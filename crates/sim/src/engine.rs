//! The simulation engine: a deterministic sequential discrete-event
//! scheduler with coroutine- or thread-backed processes, plus a
//! real-time mode.
//!
//! # Virtual mode
//!
//! Exactly one simulated process executes at a time. A process blocks
//! whenever it performs a simulator operation ([`Proc::sleep`], a
//! blocking receive, or any primitive in [`crate::sync`]); before
//! sleeping it pops the globally-earliest pending wake event itself and
//! resumes the successor directly (*direct handoff*; popping one's own
//! wake costs nothing). The [`Sim::run`] thread only performs the
//! startup dispatch, detects deadlock, and tears the run down — it is
//! not on the per-event path. Computation between simulator operations
//! executes natively (results are real) while simulated time advances
//! only through explicit charges. Ties in the event queue are broken by
//! insertion sequence number, which makes every run with the same seed
//! bit-for-bit deterministic; because the dispatch decision always
//! happens under the same lock hold that blocked the yielding process,
//! the event *order* is identical on every backend (and to the
//! historical hub-and-spoke scheduler's).
//!
//! Two [`ProcBackend`]s carry the processes:
//!
//! * **`coroutine`** (default where supported) — every process is a
//!   stack-swapped green task (see the `co` module) and all of them are
//!   multiplexed on the thread inside [`Sim::run`]. A handoff is a
//!   userspace context switch: save six registers, swap `rsp` —
//!   no syscall anywhere on the per-event path.
//! * **`threads`** — every process is an OS thread and a handoff is a
//!   `park`/`unpark` futex pair. Kept as the differential oracle: the
//!   dispatch decision is shared code, so dispatch logs, figures, and
//!   metrics must be byte-identical across backends.
//!
//! Event storage is per *node* (one heap per simulated node plus a
//! cross-node frontier heap), so a conservative parallel scheduler with
//! topology-derived lookahead can partition nodes across workers later
//! without changing the event order the sequential backends produce.
//!
//! # Real mode
//!
//! Processes run concurrently on real threads; `now()` reads a monotonic
//! wall clock and `advance` is a no-op (real work takes real time).
//! Synchronization primitives use real mutexes/condvars. This mode is used
//! by the criterion micro-benchmarks to measure the genuine cost of the
//! instrumentation fast paths.

use core::ffi::c_void;
use std::cell::UnsafeCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::thread::JoinHandle;
use std::time::Instant;

use dynprof_obs as obs;
use parking_lot::{Condvar, Mutex};

use crate::co;
use crate::fault::FaultPlan;
use crate::rng::SimRng;
use crate::time::SimTime;
use crate::topology::Machine;

/// Identifier of a simulated process (dense, starting at 0).
pub type Pid = usize;

/// Which clock the simulation runs on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockMode {
    /// Deterministic discrete-event virtual time.
    Virtual,
    /// Wall-clock time with truly concurrent threads.
    Real,
}

/// Which mechanism carries the simulated processes of a virtual-time
/// simulation.
///
/// Both backends share the dispatch algorithm (one function, one lock
/// discipline), so event order, dispatch logs, figure output, and every
/// deterministic metric are byte-identical across them; only the cost of
/// a handoff differs. `threads` is kept as the differential oracle for
/// `coroutine` and for platforms without a coroutine implementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ProcBackend {
    /// One OS thread per process; a handoff parks the yielder and
    /// unparks the successor — a futex syscall pair per event.
    Threads,
    /// One stack-swapped coroutine per process (the `co` module), all
    /// multiplexed on the thread driving [`Sim::run`]; a handoff is a
    /// userspace context switch, roughly a function call. The default
    /// where supported (x86-64 Linux).
    Coroutine,
}

/// Process-global backend override: 0 = none, 1 = threads, 2 = coroutine.
static BACKEND_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Force (or, with `None`, stop forcing) the [`ProcBackend`] of every
/// virtual-time [`Sim`] created after this call, trumping both the
/// `DYNPROF_PROC_BACKEND` environment variable and the platform default.
///
/// Intended for differential tests that replay a whole pipeline on both
/// backends within one process; such tests must serialize themselves
/// (the override is process-global state).
pub fn set_backend_override(backend: Option<ProcBackend>) {
    let v = match backend {
        None => 0,
        Some(ProcBackend::Threads) => 1,
        Some(ProcBackend::Coroutine) => 2,
    };
    BACKEND_OVERRIDE.store(v, Ordering::SeqCst);
}

impl ProcBackend {
    /// The backend a plain [`Sim::virtual_time`] resolves to: the
    /// process-global override ([`set_backend_override`]) if set, else
    /// `DYNPROF_PROC_BACKEND` (`threads` / `coroutine`; read once), else
    /// coroutines where supported. A coroutine request on a platform
    /// without the runtime falls back to threads.
    pub fn default_backend() -> ProcBackend {
        let resolved = match BACKEND_OVERRIDE.load(Ordering::SeqCst) {
            1 => ProcBackend::Threads,
            2 => ProcBackend::Coroutine,
            _ => {
                static ENV: OnceLock<Option<ProcBackend>> = OnceLock::new();
                let env =
                    *ENV.get_or_init(|| match std::env::var("DYNPROF_PROC_BACKEND").as_deref() {
                        Ok("threads") => Some(ProcBackend::Threads),
                        Ok("coroutine") => Some(ProcBackend::Coroutine),
                        _ => None,
                    });
                env.unwrap_or({
                    if co::supported() {
                        ProcBackend::Coroutine
                    } else {
                        ProcBackend::Threads
                    }
                })
            }
        };
        if resolved == ProcBackend::Coroutine && !co::supported() {
            ProcBackend::Threads
        } else {
            resolved
        }
    }
}

/// Unwind payload used to tear suspended coroutines down: raised with
/// `resume_unwind` (no panic-hook noise) at a resume point once the
/// simulation is poisoned, caught by the coroutine's boot `catch_unwind`
/// and classified as a poisoned — not panicked — exit. Destructors on
/// the coroutine's stack run normally on the way out.
struct CoPoison;

/// How a coroutine's body ended, classified by its boot closure.
enum CoExit {
    /// The body returned normally.
    Normal,
    /// Unwound by [`CoPoison`] during teardown.
    Poisoned,
    /// The body panicked; the payload is re-raised from [`Sim::run`].
    Panicked(Box<dyn std::any::Any + Send>),
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum PState {
    /// Not currently running; resumed by a queued wake event.
    Blocked,
    /// The single currently-executing process (virtual mode).
    Running,
    /// Finished.
    Done,
}

struct ProcSlot {
    name: String,
    node: usize,
    state: PState,
    clock: SimTime,
    /// OS thread backing this process, for `unpark` wakes. Registered by
    /// `spawn_at` (under the `inner` lock) before any dispatch can target
    /// the pid, so the dispatcher never races a missing handle.
    thread: Option<std::thread::Thread>,
}

/// The event heaps, split from [`EngineInner`] so that scheduling a wake
/// (`send`, `wake_other`, timer arming — the hottest producers) touches
/// only this small mutex and never contends with per-process bookkeeping
/// (clock charges, state flips, handoff accounting).
///
/// **Lock order**: `inner` before `heaps`, never the reverse. The
/// dispatcher holds `inner` and briefly takes `heaps` to pop; producers
/// take `heaps` alone.
struct Heaps {
    /// Pending wake events `(at, seq, pid)`, min-first, **one heap per
    /// simulated node** (indexed by the target pid's node). Partitioning
    /// by node is the shape a conservative parallel scheduler needs —
    /// workers own disjoint node sets and exchange lookahead bounds —
    /// and the sequential backends pay only the `frontier` merge for it.
    node_queues: Vec<BinaryHeap<Reverse<(SimTime, u64, Pid)>>>,
    /// Cross-node merge heap: `(at, seq, node)` candidates, one valid
    /// entry per nonempty node heap plus lazily-discarded stale ones. An
    /// entry is valid iff it still equals its node heap's top (`(at,
    /// seq)` pairs are unique, so equality is exact); staleness arises
    /// when a smaller event arrived after the entry was pushed, or when
    /// the entry's event was already popped. The valid minimum over this
    /// heap equals the minimum over all node tops, so the pop order is
    /// bit-for-bit the single-global-heap order.
    frontier: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    /// Total pending wake events across `node_queues`.
    queued: usize,
    /// pid → node, for routing pushes to the right heap.
    node_of: Vec<usize>,
    /// Deadline timers `(at, seq, pid, gen)`. Kept apart from the wake
    /// queues so a timed wait whose timer never fires (the no-fault fast
    /// path) leaves every queue metric — and thus the metrics dump —
    /// untouched. Timers stay global: they are rare (armed only by
    /// deadline waits) and never on the hot path.
    timers: BinaryHeap<Reverse<(SimTime, u64, Pid, u64)>>,
    /// Tie-break sequence number shared by all heaps (insertion order).
    seq: u64,
    /// Per-pid timer generation: a timer entry fires only if its recorded
    /// generation still matches. Cancellation bumps the generation *and*
    /// eagerly removes the dead entries (the generation check remains as
    /// defense in depth).
    timer_gens: Vec<u64>,
    /// Deepest the wake queues have grown in total (only tracked while
    /// observation is enabled; deterministic, since pushes are
    /// serialized).
    queue_hw: usize,
    /// Cancelled timer entries removed from the heap at the cancellation
    /// site rather than lingering until they surface at the top.
    timers_cancelled: u64,
}

impl Heaps {
    /// Push a wake event for `pid` at `at`, maintaining the frontier
    /// invariant: if the event became its node's earliest, it becomes a
    /// frontier candidate (the entry it supersedes goes stale and is
    /// discarded lazily by [`Heaps::peek_wake`]).
    fn push_wake(&mut self, at: SimTime, pid: Pid) {
        self.seq += 1;
        let seq = self.seq;
        let node = self.node_of[pid];
        let q = &mut self.node_queues[node];
        q.push(Reverse((at, seq, pid)));
        self.queued += 1;
        if let Some(&Reverse((qt, qs, _))) = q.peek() {
            if (qt, qs) == (at, seq) {
                self.frontier.push(Reverse((at, seq, node)));
            }
        }
        if obs::enabled() {
            self.queue_hw = self.queue_hw.max(self.queued);
        }
    }

    /// The earliest pending wake `(time, seq)` across all node heaps, or
    /// `None` if no wake is pending. Pops stale frontier entries as it
    /// encounters them; on `Some`, the frontier top is validated and
    /// [`Heaps::pop_wake`] may be called.
    fn peek_wake(&mut self) -> Option<(SimTime, u64)> {
        while let Some(&Reverse((t, s, node))) = self.frontier.peek() {
            match self.node_queues[node].peek() {
                Some(&Reverse((qt, qs, _))) if (qt, qs) == (t, s) => return Some((t, s)),
                _ => {
                    self.frontier.pop();
                }
            }
        }
        None
    }

    /// Pop the wake event a successful [`Heaps::peek_wake`] validated,
    /// promoting its node's next event (if any) into the frontier.
    fn pop_wake(&mut self) -> (SimTime, Pid) {
        let Reverse((_, _, node)) = self.frontier.pop().expect("validated frontier entry");
        let Reverse((t, _, pid)) = self.node_queues[node]
            .pop()
            .expect("frontier entry matched node top");
        self.queued -= 1;
        if let Some(&Reverse((nt, ns, _))) = self.node_queues[node].peek() {
            self.frontier.push(Reverse((nt, ns, node)));
        }
        (t, pid)
    }
}

/// Shared buffer behind [`DispatchLog`]: `(pid, resumed clock)` pairs.
type DispatchEntries = Arc<Mutex<Vec<(Pid, SimTime)>>>;

struct EngineInner {
    procs: Vec<ProcSlot>,
    /// Currently running pid (virtual mode); `None` while a dispatch is
    /// being chosen. `None` is never observable outside the lock during a
    /// successful handoff: the yielder clears and re-fills it under one
    /// hold, which is what makes who-dispatches deterministic.
    current: Option<Pid>,
    live: usize,
    /// Furthest time any process has reached (the makespan).
    horizon: SimTime,
    /// Wake events dispatched (throughput metric).
    dispatched: u64,
    /// Pid of the most recently dispatched process; a dispatch that
    /// resumes a different process than last time is a context switch in
    /// the one-runs-at-a-time model.
    last_pid: Option<Pid>,
    ctx_switches: u64,
    /// Optional dispatch recorder: every dispatched wake appends
    /// `(pid, resumed clock)`. Used by the dispatch-order equivalence
    /// tests; `None` (one pointer test per dispatch) in normal runs.
    dispatch_log: Option<DispatchEntries>,
    /// Dispatches performed by a yielding/finishing process handing
    /// straight to its successor (one OS-thread switch each; a process
    /// popping its own wake costs none and is also counted here as zero).
    direct_handoffs: u64,
    /// Dispatches performed by the `run()` thread (two context switches
    /// each: yielder -> scheduler -> successor). Startup only, by design.
    sched_fallbacks: u64,
    panicked: bool,
    /// First real panic payload of a coroutine-backed process, re-raised
    /// from [`Sim::run`] (the threads backend re-raises from its thread
    /// join instead).
    panic_payload: Option<Box<dyn std::any::Any + Send>>,
}

/// Engine-side per-process coroutine state (`coroutine` backend only).
struct CoSlot {
    raw: co::RawCo,
    /// Has this coroutine been resumed at least once? An unstarted slot
    /// still owns its boot closure (freed by `Drop`); a started one has
    /// handed it to the coroutine.
    started: bool,
    /// The `Box<co::BootFn>` pointer parked in the fabricated r12 slot;
    /// owned here until `started`.
    boot_raw: *mut c_void,
    /// Clock at resumption, written by the dispatcher just before the
    /// switch so the resumed coroutine reads it without taking a lock.
    resume_clock: SimTime,
}

impl Drop for CoSlot {
    fn drop(&mut self) {
        if !self.started && !self.boot_raw.is_null() {
            // The coroutine never ran: the boot closure (and the process
            // body inside it) is still ours to free.
            unsafe { drop(Box::from_raw(self.boot_raw as *mut co::BootFn)) };
        }
    }
}

/// The coroutine pool: per-pid slots plus the saved scheduler context.
///
/// Wrapped in `UnsafeCell` with hand-written `Send`/`Sync` because
/// `Engine` is shared through `Arc` (stats handles, process bodies) and
/// must stay `Sync`, while the pool itself is never accessed
/// concurrently: before `run()` only spawners touch it, serialized under
/// the `inner` lock; from then on only the driving thread — `run()` and
/// the coroutines it multiplexes are the same OS thread — ever does.
struct CoPool(UnsafeCell<CoPoolInner>);

// SAFETY: see the invariant on [`CoPool`]. Every access goes through an
// `unsafe` engine method whose caller discharges it.
unsafe impl Send for CoPool {}
unsafe impl Sync for CoPool {}

struct CoPoolInner {
    /// Per-pid coroutine slots. Boxed so addresses stay stable while the
    /// vector grows (`spawn_child` can push mid-run while pointers into
    /// other slots are live across a suspension).
    slots: Vec<Option<Box<CoSlot>>>,
    /// Saved context of the `run()` thread while a coroutine runs.
    sched_sp: *mut u8,
    /// Finished pids whose stacks await reclamation at the next safe
    /// point — a context that is provably not one of theirs (the
    /// scheduler loop, or a just-resumed process).
    retired: Vec<Pid>,
}

pub(crate) struct Engine {
    mode: ClockMode,
    /// Process carrier in virtual mode; always `Threads` in real mode
    /// (real concurrency is the point there).
    backend: ProcBackend,
    inner: Mutex<EngineInner>,
    heaps: Mutex<Heaps>,
    /// Coroutine state (`coroutine` backend only; empty otherwise).
    co: CoPool,
    sched_cv: Condvar,
    /// Mirror of `inner.current` (usize::MAX = none), written by the
    /// dispatcher under the lock (release) and read lock-free (acquire)
    /// by a waiting process as its wake condition. A process may only
    /// proceed past its park loop when this equals its own pid, and the
    /// dispatcher only stores a pid after setting `inner.current` to it —
    /// the word cannot move again until that process runs and yields, so
    /// observing one's own pid here is definitive, not a hint.
    current_word: AtomicUsize,
    /// Mirror of `inner.panicked` so parked waiters notice teardown.
    panicked_word: AtomicBool,
    /// Iterations a freshly-yielded process polls `current_word` before
    /// parking. In the alternation-heavy workloads on multi-core hosts
    /// this catches the successor's handoff without any futex traffic.
    /// Zero on single-core hosts (spinning would starve the runner).
    spin_limit: u32,
    epoch: Instant,
    machine: Machine,
    seed: u64,
    handles: Mutex<Vec<JoinHandle<()>>>,
    /// Fault plan in force, if any (set at most once, before processes
    /// start exchanging messages).
    faults: OnceLock<Arc<FaultPlan>>,
    /// Happens-before recorder (`check` feature; inert unless enabled).
    hb: Arc<crate::hb::HbState>,
}

impl Engine {
    fn new(mode: ClockMode, machine: Machine, seed: u64, backend: ProcBackend) -> Engine {
        // Real mode needs real concurrency; coroutine requests degrade
        // to threads on platforms without the runtime.
        let backend = if mode == ClockMode::Real || !co::supported() {
            ProcBackend::Threads
        } else {
            backend
        };
        let nodes = machine.nodes;
        Engine {
            mode,
            backend,
            inner: Mutex::new(EngineInner {
                procs: Vec::new(),
                current: None,
                live: 0,
                horizon: SimTime::ZERO,
                dispatched: 0,
                last_pid: None,
                ctx_switches: 0,
                dispatch_log: None,
                direct_handoffs: 0,
                sched_fallbacks: 0,
                panicked: false,
                panic_payload: None,
            }),
            heaps: Mutex::new(Heaps {
                node_queues: (0..nodes).map(|_| BinaryHeap::new()).collect(),
                frontier: BinaryHeap::new(),
                queued: 0,
                node_of: Vec::new(),
                timers: BinaryHeap::new(),
                seq: 0,
                timer_gens: Vec::new(),
                queue_hw: 0,
                timers_cancelled: 0,
            }),
            co: CoPool(UnsafeCell::new(CoPoolInner {
                slots: Vec::new(),
                sched_sp: core::ptr::null_mut(),
                retired: Vec::new(),
            })),
            sched_cv: Condvar::new(),
            current_word: AtomicUsize::new(usize::MAX),
            panicked_word: AtomicBool::new(false),
            spin_limit: match std::thread::available_parallelism() {
                Ok(n) if n.get() >= 2 => 1200,
                _ => 0,
            },
            epoch: Instant::now(),
            machine,
            seed,
            handles: Mutex::new(Vec::new()),
            faults: OnceLock::new(),
            hb: Arc::new(crate::hb::HbState::new()),
        }
    }

    fn real_now(&self) -> SimTime {
        SimTime::from_nanos(self.epoch.elapsed().as_nanos() as u64)
    }

    /// Push a wake event for `pid` at absolute time `at` (virtual mode).
    ///
    /// Producers only ever run on the currently-executing process (or on
    /// the spawning thread before `run()` starts), so no dispatcher can be
    /// idle-waiting on this event: it will be considered at the producer's
    /// next yield point. Hence no condvar signalling here — the heaps
    /// mutex is the entire cost.
    pub(crate) fn schedule(&self, pid: Pid, at: SimTime) {
        debug_assert_eq!(self.mode, ClockMode::Virtual);
        self.heaps.lock().push_wake(at, pid);
    }

    /// Arm a deadline timer waking `pid` at `at` unless cancelled first.
    pub(crate) fn schedule_timer(&self, pid: Pid, at: SimTime) {
        debug_assert_eq!(self.mode, ClockMode::Virtual);
        let mut h = self.heaps.lock();
        h.seq += 1;
        let seq = h.seq;
        let gen = h.timer_gens[pid];
        h.timers.push(Reverse((at, seq, pid, gen)));
    }

    /// Invalidate every outstanding timer of `pid`, removing its dead heap
    /// entries eagerly so they never surface at dispatch (the generation
    /// bump still guards any entry a future refactor might leave behind).
    pub(crate) fn cancel_timers(&self, pid: Pid) {
        let mut h = self.heaps.lock();
        h.timer_gens[pid] += 1;
        let before = h.timers.len();
        if before > 0 {
            h.timers.retain(|&Reverse((_, _, tpid, _))| tpid != pid);
            h.timers_cancelled += (before - h.timers.len()) as u64;
        }
    }

    /// Pop the earliest runnable event and dispatch it: lift the target's
    /// clock, account the dispatch, and set `current`. Returns the
    /// dispatched pid and its wake handle, or `None` if no useful event
    /// is pending (the caller decides whether that means deadlock).
    ///
    /// Must be called with the `inner` guard held and `current == None`;
    /// the whole decision happens under that single hold, so which thread
    /// calls this (a yielding process, a finishing process, or the `run()`
    /// thread at startup) can never change the chosen order.
    ///
    /// The caller must `unpark` the returned handle **after dropping the
    /// guard**: waking first would let the successor preempt us (CFS
    /// wake-up preemption on a loaded core) only to block on the mutex we
    /// still hold — an extra context switch plus a futex round trip on
    /// every single event. Deferring the wake is safe because the park
    /// token cannot be lost and `current_word` is already published.
    fn dispatch_next(
        &self,
        g: &mut parking_lot::MutexGuard<'_, EngineInner>,
    ) -> Option<(Pid, Option<std::thread::Thread>)> {
        debug_assert!(g.current.is_none());
        loop {
            let (t, pid) = {
                let mut h = self.heaps.lock();
                // Discard stale timers at the top: cancelled generations
                // (normally already removed eagerly) or finished procs.
                while let Some(&Reverse((_, _, tpid, tgen))) = h.timers.peek() {
                    if h.timer_gens[tpid] != tgen || g.procs[tpid].state == PState::Done {
                        h.timers.pop();
                    } else {
                        break;
                    }
                }
                let wake = h.peek_wake();
                let take_timer = match (wake, h.timers.peek()) {
                    (None, None) => return None,
                    (Some(_), None) => false,
                    (None, Some(_)) => true,
                    (Some((qt, _)), Some(&Reverse((tt, _, _, _)))) => {
                        // Strict precedence only: at equal times the wake
                        // event wins, so a message arriving exactly at a
                        // receive deadline is delivered (and observed)
                        // before the timeout can fire.
                        tt < qt
                    }
                };
                if take_timer {
                    let Reverse((t, _seq, pid, _gen)) = h.timers.pop().expect("peeked timer");
                    (t, pid)
                } else {
                    h.pop_wake()
                }
            };
            match g.procs[pid].state {
                PState::Done => continue, // stale wake for a finished process
                PState::Running => {
                    unreachable!("running proc has queued wake while scheduler active")
                }
                PState::Blocked => {
                    let c = g.procs[pid].clock;
                    g.procs[pid].clock = c.max(t);
                    g.horizon = g.horizon.max(g.procs[pid].clock);
                    g.dispatched += 1;
                    if let Some(log) = &g.dispatch_log {
                        let entry = (pid, g.procs[pid].clock);
                        log.lock().push(entry);
                    }
                    if g.last_pid != Some(pid) {
                        g.ctx_switches += 1;
                        g.last_pid = Some(pid);
                    }
                    g.current = Some(pid);
                    self.current_word.store(pid, Ordering::Release);
                    return Some((pid, g.procs[pid].thread.clone()));
                }
            }
        }
    }

    /// Yield the calling process and wait to be resumed. Returns the
    /// (updated) local clock at resumption.
    ///
    /// The caller must have arranged to be woken: either by scheduling its
    /// own wake, or because another process will `schedule` it.
    ///
    /// This is the direct-handoff fast path: the yielder itself pops the
    /// next runnable event and resumes the successor, all under the same
    /// `inner` hold that marked it blocked — one context switch per event
    /// instead of the hub-and-spoke two, and zero when the popped event
    /// is the yielder's own wake (timed sleeps). Only when no event is
    /// pending does it defer to the `run()` thread, which owns the
    /// deadlock verdict. What a "context switch" costs is the backend's
    /// business: a futex `park`/`unpark` pair on `threads`, a userspace
    /// stack swap on `coroutine` — the dispatch decision is this shared
    /// code either way.
    pub(crate) fn yield_and_wait(&self, pid: Pid) -> SimTime {
        debug_assert_eq!(self.mode, ClockMode::Virtual);
        match self.backend {
            ProcBackend::Threads => self.yield_and_wait_threads(pid),
            ProcBackend::Coroutine => self.yield_and_wait_co(pid),
        }
    }

    /// [`Engine::yield_and_wait`], coroutine backend: the successor is
    /// resumed by swapping stacks in userspace. The dispatcher pre-marks
    /// the successor `Running` and hands it its resumption clock through
    /// its [`CoSlot`], so the resumed side re-acquires no lock at all.
    fn yield_and_wait_co(&self, pid: Pid) -> SimTime {
        let mut g = self.inner.lock();
        debug_assert_eq!(g.current, Some(pid), "yield by non-running process");
        g.procs[pid].state = PState::Blocked;
        g.current = None;
        self.current_word.store(usize::MAX, Ordering::Relaxed);
        match self.dispatch_next(&mut g) {
            Some((next, _)) if next == pid => {
                // Popped our own wake (a timed sleep): no switch at all.
                g.procs[pid].state = PState::Running;
                return g.procs[pid].clock;
            }
            Some((next, _)) => {
                g.direct_handoffs += 1;
                g.procs[next].state = PState::Running;
                let clock = g.procs[next].clock;
                drop(g);
                // SAFETY: we are the driving thread, the guard is
                // dropped, and no reference into shared state is live
                // across the switch.
                unsafe { self.co_transfer(Some(pid), next, clock) };
            }
            None => {
                // Nothing runnable: hand the verdict (deadlock or
                // teardown) to the scheduler context in `run()`.
                drop(g);
                unsafe { self.co_yield_to_sched(pid) };
            }
        }
        // Resumed. Teardown poison unwinds us before anything else;
        // otherwise reclaim stacks that finished while we were
        // suspended, then read the clock the dispatcher wrote (our state
        // was pre-set to `Running` under the dispatcher's lock hold, so
        // this path takes no lock).
        if self.panicked_word.load(Ordering::Acquire) {
            std::panic::resume_unwind(Box::new(CoPoison));
        }
        unsafe {
            self.co_drain_retired();
            let pool = &*self.co.0.get();
            pool.slots[pid]
                .as_deref()
                .expect("own coroutine slot")
                .resume_clock
        }
    }

    /// Register a coroutine slot for the next pid. Must be called under
    /// the `inner` lock (which serializes pre-run spawners) or from the
    /// driving thread mid-run (`spawn_child`).
    ///
    /// # Safety
    ///
    /// Caller must hold one of the serializations above; `pid` must be
    /// the slot index `register_proc` just assigned.
    unsafe fn co_register(&self, pid: Pid, boot: co::BootFn) {
        let pool = &mut *self.co.0.get();
        debug_assert_eq!(pool.slots.len(), pid, "coroutine pids must be dense");
        let boot_raw = Box::into_raw(Box::new(boot)) as *mut c_void;
        pool.slots.push(Some(Box::new(CoSlot {
            raw: co::RawCo::new(co::stack_bytes(), boot_raw),
            started: false,
            boot_raw,
            resume_clock: SimTime::ZERO,
        })));
    }

    /// Resume `next` (already marked `Running`, clock already lifted)
    /// from the context `from` (`None` = the scheduler in `run()`).
    /// Returns when something later switches back to the saved context.
    ///
    /// # Safety
    ///
    /// Driving thread only; no lock guard may be held and no reference
    /// into engine state may be live across the call.
    unsafe fn co_transfer(&self, from: Option<Pid>, next: Pid, clock: SimTime) {
        debug_assert_ne!(from, Some(next), "self-transfer is the lock-held fast path");
        let (save, to) = {
            let p = &mut *self.co.0.get();
            {
                let slot = p.slots[next].as_deref_mut().expect("successor slot");
                slot.resume_clock = clock;
                slot.started = true;
            }
            let to = p.slots[next]
                .as_deref()
                .expect("successor slot")
                .raw
                .resume_sp;
            let save: *mut *mut u8 = match from {
                Some(y) => {
                    &mut p.slots[y]
                        .as_deref_mut()
                        .expect("yielder slot")
                        .raw
                        .resume_sp
                }
                None => &mut p.sched_sp,
            };
            (save, to)
        };
        co::switch(save, to);
    }

    /// Switch from `pid`'s coroutine to the scheduler context in `run()`.
    ///
    /// # Safety
    ///
    /// Same contract as [`Engine::co_transfer`].
    unsafe fn co_yield_to_sched(&self, pid: Pid) {
        let (save, to) = {
            let p = &mut *self.co.0.get();
            let save: *mut *mut u8 = &mut p.slots[pid]
                .as_deref_mut()
                .expect("yielder slot")
                .raw
                .resume_sp;
            (save, p.sched_sp)
        };
        co::switch(save, to);
    }

    /// Unmap the stacks of coroutines that finished while the caller was
    /// suspended.
    ///
    /// # Safety
    ///
    /// Driving thread only, and the current context must not be one of
    /// the retired pids (guaranteed for the scheduler and for any
    /// just-resumed — hence live — process).
    unsafe fn co_drain_retired(&self) {
        let pool = &mut *self.co.0.get();
        while let Some(pid) = pool.retired.pop() {
            pool.slots[pid] = None;
        }
    }

    /// Finish `pid`'s coroutine: account the exit, pick a successor when
    /// appropriate, retire the stack, and return the final switch that
    /// [`crate::co`]'s entry point performs once the boot closure's
    /// environment is gone. After a panic or during poison teardown no
    /// successor is dispatched — control returns to the scheduler, which
    /// owns teardown.
    fn co_finish(&self, pid: Pid, exit: CoExit) -> co::FinalSwitch {
        let mut g = self.inner.lock();
        let teardown = match exit {
            CoExit::Normal => false,
            CoExit::Poisoned => true,
            CoExit::Panicked(payload) => {
                g.panicked = true;
                self.panicked_word.store(true, Ordering::Release);
                g.panic_payload.get_or_insert(payload);
                true
            }
        };
        g.procs[pid].state = PState::Done;
        g.live -= 1;
        let clock = g.procs[pid].clock;
        g.horizon = g.horizon.max(clock);
        g.current = None;
        self.current_word.store(usize::MAX, Ordering::Relaxed);
        let mut target = None;
        if !teardown && !g.panicked && g.live > 0 {
            if let Some((next, _)) = self.dispatch_next(&mut g) {
                g.direct_handoffs += 1;
                g.procs[next].state = PState::Running;
                target = Some((next, g.procs[next].clock));
            }
        }
        drop(g);
        // SAFETY: driving thread, guard dropped. The returned pointers
        // stay valid because slots are boxed and the pool lives in the
        // engine, which `run()` keeps alive past the final switch.
        unsafe {
            let p = &mut *self.co.0.get();
            p.retired.push(pid);
            let save: *mut *mut u8 =
                &mut p.slots[pid].as_deref_mut().expect("own slot").raw.resume_sp;
            let to = match target {
                Some((next, clock)) => {
                    let slot = p.slots[next].as_deref_mut().expect("successor slot");
                    slot.resume_clock = clock;
                    slot.started = true;
                    slot.raw.resume_sp
                }
                None => p.sched_sp,
            };
            co::FinalSwitch { save, to }
        }
    }

    /// Poison-unwind every started-but-unfinished coroutine (their
    /// destructors run normally), then free all coroutine state. Called
    /// exactly once from `run()` after its dispatch loop; on a clean
    /// completion there is nothing to unwind and this only reclaims
    /// stacks.
    ///
    /// # Safety
    ///
    /// Driving thread, with no coroutine currently running. On the
    /// unwind path `panicked_word` must already be set (the resumed
    /// coroutines unwind off it).
    unsafe fn co_teardown(&self) {
        loop {
            let pid = {
                let g = self.inner.lock();
                let pool = &*self.co.0.get();
                pool.slots.iter().enumerate().find_map(|(i, s)| match s {
                    Some(s) if s.started && g.procs[i].state != PState::Done => Some(i),
                    _ => None,
                })
            };
            let Some(pid) = pid else { break };
            debug_assert!(
                self.panicked_word.load(Ordering::Acquire),
                "unfinished coroutine at teardown without poison"
            );
            let (save, to) = {
                let p = &mut *self.co.0.get();
                let to = p.slots[pid]
                    .as_deref()
                    .expect("poisoned slot")
                    .raw
                    .resume_sp;
                (&mut p.sched_sp as *mut *mut u8, to)
            };
            // The coroutine resumes at its poison check, unwinds, and
            // its `co_finish(Poisoned)` switches straight back here.
            co::switch(save, to);
        }
        let pool = &mut *self.co.0.get();
        pool.retired.clear();
        pool.slots.clear();
    }

    /// [`Engine::yield_and_wait`], threads backend: the successor is
    /// woken with `unpark` (after the lock drops — see
    /// [`Engine::dispatch_next`]) and the yielder spins briefly, then
    /// parks until its pid appears in the current-word mirror.
    fn yield_and_wait_threads(&self, pid: Pid) -> SimTime {
        let mut g = self.inner.lock();
        debug_assert_eq!(g.current, Some(pid), "yield by non-running process");
        g.procs[pid].state = PState::Blocked;
        g.current = None;
        self.current_word.store(usize::MAX, Ordering::Relaxed);
        let successor = match self.dispatch_next(&mut g) {
            Some((next, _)) if next == pid => {
                // Popped our own wake (a timed sleep): no handoff at all.
                g.procs[pid].state = PState::Running;
                return g.procs[pid].clock;
            }
            Some((_, t)) => {
                g.direct_handoffs += 1;
                t
            }
            None => {
                self.sched_cv.notify_one();
                None
            }
        };
        // Release the lock *before* waking the successor (see
        // `dispatch_next`), then wait for our pid to appear in the
        // current mirror: a bounded spin first (multi-core hosts catch
        // the next handoff without any futex traffic), then park. A
        // stale `unpark` token from a wake we caught mid-spin only costs
        // one immediate `park` return.
        drop(g);
        if let Some(t) = successor {
            t.unpark();
        }
        for _ in 0..self.spin_limit {
            if self.current_word.load(Ordering::Acquire) == pid
                || self.panicked_word.load(Ordering::Relaxed)
            {
                break;
            }
            std::hint::spin_loop();
        }
        while self.current_word.load(Ordering::Acquire) != pid {
            if self.panicked_word.load(Ordering::Acquire) {
                // Another process thread panicked; unwind this one too so
                // the whole simulation tears down instead of hanging.
                panic!("simulation aborted: a sibling process panicked");
            }
            std::thread::park();
        }
        let mut g = self.inner.lock();
        debug_assert_eq!(g.current, Some(pid), "woken without being dispatched");
        g.procs[pid].state = PState::Running;
        g.procs[pid].clock
    }

    /// Push the bookkeeping for a new process — slot, liveness, heap
    /// registration, start event, HB registration and (coroutine
    /// backend) the coroutine slot — under one `inner` hold, and return
    /// the pid. The single hold is what serializes concurrent pre-run
    /// spawners, including their coroutine-pool pushes.
    fn register_proc(
        &self,
        name: &str,
        node: usize,
        start: SimTime,
        boot: Option<co::BootFn>,
    ) -> Pid {
        let mut g = self.inner.lock();
        let pid = g.procs.len();
        if crate::hb::compiled() {
            self.hb.register(pid, name);
        }
        g.procs.push(ProcSlot {
            name: name.to_string(),
            node,
            state: PState::Blocked,
            clock: start,
            thread: None,
        });
        g.live += 1;
        {
            // `inner` before `heaps` — the one allowed nesting order.
            let mut h = self.heaps.lock();
            h.timer_gens.push(0);
            h.node_of.push(node);
            if self.mode == ClockMode::Virtual {
                h.push_wake(start, pid);
            }
        }
        if let Some(boot) = boot {
            // SAFETY: serialized by the `inner` hold above (pre-run
            // spawners) or by being the driving thread (`spawn_child`).
            unsafe { self.co_register(pid, boot) };
        }
        pid
    }

    /// Called by a process thread when its body returns. In virtual mode
    /// the finishing process dispatches its successor directly (same
    /// single-hold argument as [`Engine::yield_and_wait`]); the `run()`
    /// thread is only signalled when everything is done or nothing is
    /// runnable.
    fn finish(&self, pid: Pid) {
        let mut g = self.inner.lock();
        g.procs[pid].state = PState::Done;
        g.live -= 1;
        let clock = g.procs[pid].clock;
        g.horizon = g.horizon.max(clock);
        if self.mode == ClockMode::Virtual {
            debug_assert_eq!(g.current, Some(pid));
            g.current = None;
            self.current_word.store(usize::MAX, Ordering::Relaxed);
            if g.live == 0 {
                self.sched_cv.notify_one();
            } else {
                let successor = match self.dispatch_next(&mut g) {
                    Some((_, t)) => {
                        g.direct_handoffs += 1;
                        t
                    }
                    None => {
                        self.sched_cv.notify_one();
                        None
                    }
                };
                drop(g);
                if let Some(t) = successor {
                    t.unpark();
                }
            }
        }
    }

    fn abort(&self, pid: Pid) {
        let mut g = self.inner.lock();
        g.panicked = true;
        self.panicked_word.store(true, Ordering::Release);
        g.procs[pid].state = PState::Done;
        g.live -= 1;
        if g.current == Some(pid) {
            g.current = None;
        }
        // Wake everything so all threads observe the panic flag (the
        // `panicked_word` store above happens-before each `unpark`).
        for p in &g.procs {
            if let Some(t) = &p.thread {
                t.unpark();
            }
        }
        self.sched_cv.notify_one();
    }

    pub(crate) fn clock_of(&self, pid: Pid) -> SimTime {
        match self.mode {
            ClockMode::Virtual => self.inner.lock().procs[pid].clock,
            ClockMode::Real => self.real_now(),
        }
    }

    /// Advance `pid`'s clock in place without yielding (cheap charge while
    /// the process is running). Virtual mode only; no-op in real mode.
    pub(crate) fn charge(&self, pid: Pid, dt: SimTime) {
        if self.mode == ClockMode::Real || dt == SimTime::ZERO {
            return;
        }
        let mut g = self.inner.lock();
        debug_assert_eq!(g.current, Some(pid), "charge by non-running process");
        let dt = match self.faults.get() {
            Some(plan) => plan.scale_work(g.procs[pid].node, dt),
            None => dt,
        };
        g.procs[pid].clock += dt;
    }

    /// Set `pid`'s clock to `max(clock, t)` (used when a wake event carries
    /// an arrival time computed by another process).
    pub(crate) fn lift_clock(&self, pid: Pid, t: SimTime) {
        if self.mode == ClockMode::Real {
            return;
        }
        let mut g = self.inner.lock();
        let c = g.procs[pid].clock;
        g.procs[pid].clock = c.max(t);
    }
}

/// A handle to the simulation: spawn processes, run to completion.
pub struct Sim {
    eng: Arc<Engine>,
}

impl Sim {
    /// Create a simulation on `machine` with the given clock mode and
    /// seed, on the default [`ProcBackend`] (see
    /// [`ProcBackend::default_backend`]).
    ///
    /// If a process-global fault spec is installed
    /// ([`crate::fault::set_global_spec`]) and the mode is virtual, the
    /// simulation instantiates its own deterministic [`FaultPlan`] from it.
    pub fn new(mode: ClockMode, machine: Machine, seed: u64) -> Sim {
        Sim::with_backend(mode, machine, seed, ProcBackend::default_backend())
    }

    /// [`Sim::new`] with an explicit process backend. Real mode always
    /// uses threads (real concurrency is its purpose); a coroutine
    /// request on a platform without the runtime degrades to threads.
    pub fn with_backend(mode: ClockMode, machine: Machine, seed: u64, backend: ProcBackend) -> Sim {
        let sim = Sim {
            eng: Arc::new(Engine::new(mode, machine, seed, backend)),
        };
        if mode == ClockMode::Virtual {
            if let Some(spec) = crate::fault::global_spec() {
                let plan = FaultPlan::new(&spec, sim.machine());
                let _ = sim.eng.faults.set(plan);
            }
        }
        sim
    }

    /// Shorthand: deterministic virtual-time simulation.
    pub fn virtual_time(machine: Machine, seed: u64) -> Sim {
        Sim::new(ClockMode::Virtual, machine, seed)
    }

    /// Shorthand: deterministic virtual-time simulation on an explicit
    /// process backend (differential tests and benchmarks).
    pub fn virtual_time_with_backend(machine: Machine, seed: u64, backend: ProcBackend) -> Sim {
        Sim::with_backend(ClockMode::Virtual, machine, seed, backend)
    }

    /// Shorthand: real-time simulation (for measurement).
    pub fn real_time(machine: Machine) -> Sim {
        Sim::new(ClockMode::Real, machine, 0)
    }

    /// The process backend actually in force (after platform fallback).
    pub fn backend(&self) -> ProcBackend {
        self.eng.backend
    }

    /// The machine this simulation models.
    pub fn machine(&self) -> &Machine {
        &self.eng.machine
    }

    /// The clock mode.
    pub fn mode(&self) -> ClockMode {
        self.eng.mode
    }

    /// Install a fault plan for this simulation (at most once; before the
    /// processes start exchanging messages). Returns `false` if a plan —
    /// e.g. one instantiated from the global spec — was already in place.
    pub fn set_fault_plan(&self, plan: Arc<FaultPlan>) -> bool {
        self.eng.faults.set(plan).is_ok()
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.eng.faults.get().cloned()
    }

    /// Turn on happens-before recording for this simulation. A no-op
    /// unless the crate was built with the `check` feature (the recorder
    /// exists but every recording site is compiled away). Call before
    /// spawning processes so registration and events are complete.
    pub fn enable_check(&self) {
        self.eng.hb.set_enabled(crate::hb::compiled());
    }

    /// A handle for reading this simulation's happens-before verdict.
    /// Take it before [`Sim::run`] consumes the `Sim`; call
    /// [`crate::hb::CheckHandle::report`] after the run completes.
    pub fn check_handle(&self) -> crate::hb::CheckHandle {
        crate::hb::CheckHandle::new(Arc::clone(&self.eng.hb))
    }

    /// Wake events dispatched so far (virtual mode; a throughput metric
    /// for harnesses sizing their workloads).
    pub fn events_dispatched(&self) -> u64 {
        self.eng.inner.lock().dispatched
    }

    /// A read handle onto the engine's throughput counters that stays
    /// valid after [`Sim::run`] consumes the `Sim`. Benchmarks use it to
    /// compute events/sec without enabling the observability layer.
    pub fn stats(&self) -> EngineStats {
        EngineStats {
            eng: Arc::clone(&self.eng),
        }
    }

    /// Turn on dispatch recording: every dispatched wake event appends
    /// `(pid, clock-at-resumption)` to the returned log, in dispatch
    /// order. The log handle stays valid after [`Sim::run`] consumes the
    /// `Sim`; used by the dispatch-order equivalence tests to pin the
    /// scheduler's exact event ordering.
    pub fn record_dispatches(&self) -> DispatchLog {
        let entries = Arc::new(Mutex::new(Vec::new()));
        self.eng.inner.lock().dispatch_log = Some(Arc::clone(&entries));
        DispatchLog { entries }
    }

    /// Spawn a process named `name` on `node`, starting at time `start`
    /// (virtual mode; ignored in real mode). Returns its pid.
    ///
    /// Panics if `node` is out of range for the machine.
    pub fn spawn_at(
        &self,
        name: impl Into<String>,
        node: usize,
        start: SimTime,
        f: impl FnOnce(&Proc) + Send + 'static,
    ) -> Pid {
        let name = name.into();
        assert!(
            node < self.eng.machine.nodes,
            "node {node} out of range for {} ({} nodes)",
            self.eng.machine.name,
            self.eng.machine.nodes
        );
        let eng = Arc::clone(&self.eng);
        if eng.mode == ClockMode::Virtual && eng.backend == ProcBackend::Coroutine {
            // Coroutine backend: no thread, no handshake. The body is
            // wrapped in a boot closure that catches every unwind,
            // classifies the exit, drops everything it owns (including
            // its engine reference — `run()` keeps the engine alive),
            // and returns the final switch for the coroutine entry point
            // to perform from an owning-nothing frame.
            let eng2 = Arc::clone(&self.eng);
            let body: Box<dyn FnOnce(&Proc) + Send> = Box::new(f);
            let boot: co::BootFn = Box::new(move || {
                // First dispatch: we are the current process by
                // definition, which is how the closure learns its pid
                // (it is built before the pid is assigned).
                let pid = eng2
                    .inner
                    .lock()
                    .current
                    .expect("started coroutine is current");
                let proc_ = Proc {
                    eng: Arc::clone(&eng2),
                    pid,
                    node,
                    rng: Mutex::new(SimRng::for_process(eng2.seed, pid)),
                };
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| body(&proc_)));
                let exit = match res {
                    Ok(()) => CoExit::Normal,
                    Err(p) if p.is::<CoPoison>() => CoExit::Poisoned,
                    Err(p) => CoExit::Panicked(p),
                };
                drop(proc_);
                let eng_ptr: *const Engine = Arc::as_ptr(&eng2);
                drop(eng2);
                // SAFETY: a coroutine only finishes while `run()` drives
                // it, and `run()` holds a strong engine reference.
                unsafe { (*eng_ptr).co_finish(pid, exit) }
            });
            return eng.register_proc(&name, node, start, Some(boot));
        }
        let pid = eng.register_proc(&name, node, start, None);
        let eng2 = Arc::clone(&self.eng);
        let handle = std::thread::Builder::new()
            .name(format!("sim-{name}"))
            .spawn(move || {
                let proc_ = Proc {
                    eng: Arc::clone(&eng2),
                    pid,
                    node,
                    rng: Mutex::new(SimRng::for_process(eng2.seed, pid)),
                };
                if eng2.mode == ClockMode::Virtual {
                    // Wait to be dispatched our start event (no spin: the
                    // gap between spawn and first dispatch is unbounded).
                    while eng2.current_word.load(Ordering::Acquire) != pid {
                        if eng2.panicked_word.load(Ordering::Acquire) {
                            panic!("simulation aborted before process start");
                        }
                        std::thread::park();
                    }
                    let mut g = eng2.inner.lock();
                    debug_assert_eq!(g.current, Some(pid));
                    g.procs[pid].state = PState::Running;
                    drop(g);
                }
                let res = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(&proc_)));
                match res {
                    Ok(()) => eng2.finish(pid),
                    Err(payload) => {
                        eng2.abort(pid);
                        std::panic::resume_unwind(payload);
                    }
                }
            })
            .expect("spawn simulation thread");
        // Register the wake handle before any dispatch can pick this pid:
        // the spawner (the running process, or the main thread before
        // `run()`) does not yield between the slot push above and here,
        // so no dispatcher can race a still-missing handle.
        self.eng.inner.lock().procs[pid].thread = Some(handle.thread().clone());
        self.eng.handles.lock().push(handle);
        pid
    }

    /// Spawn at time zero.
    pub fn spawn(
        &self,
        name: impl Into<String>,
        node: usize,
        f: impl FnOnce(&Proc) + Send + 'static,
    ) -> Pid {
        self.spawn_at(name, node, SimTime::ZERO, f)
    }

    /// Run the simulation until all processes finish. Returns the makespan
    /// (latest clock reached by any process).
    ///
    /// In virtual mode this drives the event loop on the calling thread.
    /// Panics (after unblocking all threads) if the simulation deadlocks —
    /// i.e. live processes remain but no wake event is pending.
    pub fn run(self) -> SimTime {
        match self.eng.mode {
            ClockMode::Real => {
                let handles = std::mem::take(&mut *self.eng.handles.lock());
                let mut first_panic = None;
                for h in handles {
                    if let Err(payload) = h.join() {
                        first_panic.get_or_insert(payload);
                    }
                }
                if let Some(payload) = first_panic {
                    std::panic::resume_unwind(payload);
                }
                self.eng.real_now()
            }
            ClockMode::Virtual => match self.eng.backend {
                ProcBackend::Threads => self.run_virtual_threads(),
                ProcBackend::Coroutine => self.run_virtual_co(),
            },
        }
    }

    /// Virtual-mode run loop, threads backend.
    fn run_virtual_threads(self) -> SimTime {
        {
            {
                // With direct handoff, this thread is off the per-event
                // path: it performs the startup dispatch, then sleeps
                // until a yielder finds nothing runnable (deadlock
                // verdict), a panic propagates, or the last process
                // finishes (teardown).
                loop {
                    let mut g = self.eng.inner.lock();
                    // Wait until nobody is running. A successful handoff
                    // never exposes `current == None`, so waking here with
                    // live processes means a dispatch genuinely failed.
                    while g.current.is_some() && !g.panicked {
                        self.eng.sched_cv.wait(&mut g);
                    }
                    if g.panicked {
                        break;
                    }
                    if g.live == 0 {
                        break;
                    }
                    match self.eng.dispatch_next(&mut g) {
                        Some((_, t)) => {
                            g.sched_fallbacks += 1;
                            drop(g);
                            if let Some(t) = t {
                                t.unpark();
                            }
                        }
                        None => {
                            // live > 0 but no event: deadlock. Report who is stuck.
                            let stuck: Vec<String> = g
                                .procs
                                .iter()
                                .filter(|p| p.state == PState::Blocked)
                                .map(|p| format!("{} (node {}, t={})", p.name, p.node, p.clock))
                                .collect();
                            g.panicked = true;
                            self.eng.panicked_word.store(true, Ordering::Release);
                            for p in &g.procs {
                                if let Some(t) = &p.thread {
                                    t.unpark();
                                }
                            }
                            drop(g);
                            // Reap threads so their panics don't outlive us.
                            let handles = std::mem::take(&mut *self.eng.handles.lock());
                            for h in handles {
                                let _ = h.join();
                            }
                            panic!(
                            "simulation deadlock: no pending events but {} process(es) blocked: {}",
                            stuck.len(),
                            stuck.join(", ")
                        );
                        }
                    }
                }
                let handles = std::mem::take(&mut *self.eng.handles.lock());
                let mut root_panic = None;
                let mut any_panic = None;
                for h in handles {
                    if let Err(payload) = h.join() {
                        // Prefer the original panic over the cascading
                        // "sibling panicked" aborts of other processes.
                        let is_cascade = payload
                            .downcast_ref::<&str>()
                            .is_some_and(|s| s.contains("sibling process panicked"))
                            || payload
                                .downcast_ref::<String>()
                                .is_some_and(|s| s.contains("sibling process panicked"));
                        if !is_cascade {
                            root_panic.get_or_insert(payload);
                        } else {
                            any_panic.get_or_insert(payload);
                        }
                    }
                }
                let g = self.eng.inner.lock();
                if let Some(payload) = root_panic.or(any_panic) {
                    drop(g);
                    // Re-raise the original process panic so callers (and
                    // #[should_panic] tests) see the real message.
                    std::panic::resume_unwind(payload);
                }
                if g.panicked {
                    drop(g);
                    panic!("a simulated process panicked");
                }
                Self::flush_obs(&self.eng, &g);
                g.horizon
            }
        }
    }

    /// Virtual-mode run loop, coroutine backend. This thread IS the
    /// worker pool: it performs the startup dispatch by switching onto
    /// the first coroutine's stack, and from then on every handoff is a
    /// userspace stack swap between process stacks. Control only comes
    /// back here when a dispatch finds nothing runnable (teardown or
    /// deadlock verdict) or a process panicked — never on the per-event
    /// path.
    fn run_virtual_co(self) -> SimTime {
        loop {
            let mut g = self.eng.inner.lock();
            if g.panicked || g.live == 0 {
                break;
            }
            debug_assert!(
                g.current.is_none(),
                "scheduler resumed while a process is running"
            );
            match self.eng.dispatch_next(&mut g) {
                Some((next, _)) => {
                    g.sched_fallbacks += 1;
                    g.procs[next].state = PState::Running;
                    let clock = g.procs[next].clock;
                    drop(g);
                    // SAFETY: this is the driving thread, the guard is
                    // dropped, and no reference into engine state is live
                    // across the switch. The drain runs with every
                    // coroutine suspended, so no retired stack is current.
                    unsafe {
                        self.eng.co_transfer(None, next, clock);
                        self.eng.co_drain_retired();
                    }
                }
                None => {
                    // live > 0 but no event: deadlock. Capture who is
                    // stuck *before* teardown marks them done.
                    let stuck: Vec<String> = g
                        .procs
                        .iter()
                        .filter(|p| p.state == PState::Blocked)
                        .map(|p| format!("{} (node {}, t={})", p.name, p.node, p.clock))
                        .collect();
                    g.panicked = true;
                    self.eng.panicked_word.store(true, Ordering::Release);
                    drop(g);
                    // Poison-unwind the blocked coroutines so their
                    // destructors run (the threads backend joins its
                    // process threads here for the same reason).
                    unsafe { self.eng.co_teardown() };
                    panic!(
                        "simulation deadlock: no pending events but {} process(es) blocked: {}",
                        stuck.len(),
                        stuck.join(", ")
                    );
                }
            }
        }
        // Clean completion (nothing to unwind, frees the stacks) or a
        // process panic (poison-unwinds the survivors first).
        unsafe { self.eng.co_teardown() };
        let mut g = self.eng.inner.lock();
        if let Some(payload) = g.panic_payload.take() {
            drop(g);
            // Re-raise the original process panic so callers (and
            // #[should_panic] tests) see the real message.
            std::panic::resume_unwind(payload);
        }
        if g.panicked {
            drop(g);
            panic!("a simulated process panicked");
        }
        Self::flush_obs(&self.eng, &g);
        g.horizon
    }

    /// Flush the per-run throughput counters and gauges. Called once at
    /// the end of a successful virtual run, under the `inner` lock (the
    /// `heaps` lock nests inside — the one allowed order).
    fn flush_obs(eng: &Engine, g: &EngineInner) {
        if obs::enabled() {
            // Flushed once per run, so nothing touches the
            // per-event hot path and nothing advances virtual time.
            let (queue_hw, timers_cancelled) = {
                let h = eng.heaps.lock();
                (h.queue_hw, h.timers_cancelled)
            };
            obs::counter("sim.events_dispatched").add(g.dispatched);
            obs::counter("sim.context_switches").add(g.ctx_switches);
            obs::counter("sim.direct_handoffs").add(g.direct_handoffs);
            obs::counter("sim.sched_fallbacks").add(g.sched_fallbacks);
            obs::counter("sim.timers_cancelled_eagerly").add(timers_cancelled);
            obs::gauge("sim.queue_depth_high_water").set(queue_hw as u64);
            obs::gauge("sim.virtual_horizon_ns").set(g.horizon.as_nanos());
            obs::gauge("sim.real_elapsed_ns").set(eng.epoch.elapsed().as_nanos() as u64);
        }
    }
}

/// A read-only handle onto a simulation's throughput counters, usable
/// after [`Sim::run`] has consumed the `Sim` (obtain with [`Sim::stats`]
/// before the run).
pub struct EngineStats {
    eng: Arc<Engine>,
}

impl EngineStats {
    /// Total wake/timer events dispatched.
    pub fn events_dispatched(&self) -> u64 {
        self.eng.inner.lock().dispatched
    }

    /// The furthest virtual time any process reached.
    pub fn horizon(&self) -> SimTime {
        self.eng.inner.lock().horizon
    }

    /// Dispatches performed as a direct process-to-process handoff
    /// (one OS-thread switch each).
    pub fn direct_handoffs(&self) -> u64 {
        self.eng.inner.lock().direct_handoffs
    }

    /// Dispatches routed through the scheduler thread (two OS-thread
    /// switches each).
    pub fn sched_fallbacks(&self) -> u64 {
        self.eng.inner.lock().sched_fallbacks
    }

    /// Cancelled timer entries removed eagerly at cancellation sites.
    pub fn timers_cancelled_eagerly(&self) -> u64 {
        self.eng.heaps.lock().timers_cancelled
    }
}

/// A recorded dispatch sequence (see [`Sim::record_dispatches`]).
pub struct DispatchLog {
    entries: DispatchEntries,
}

impl DispatchLog {
    /// The `(pid, clock-at-resumption)` pairs, in dispatch order.
    pub fn entries(&self) -> Vec<(Pid, SimTime)> {
        self.entries.lock().clone()
    }
}

/// Per-process handle passed to each process body.
pub struct Proc {
    eng: Arc<Engine>,
    pid: Pid,
    node: usize,
    rng: Mutex<SimRng>,
}

impl Proc {
    /// This process's pid.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The node this process runs on.
    pub fn node(&self) -> usize {
        self.node
    }

    /// This process's name.
    pub fn name(&self) -> String {
        self.eng.inner.lock().procs[self.pid].name.clone()
    }

    /// The machine model.
    pub fn machine(&self) -> &Machine {
        &self.eng.machine
    }

    /// The clock mode.
    pub fn mode(&self) -> ClockMode {
        self.eng.mode
    }

    /// Current local time.
    pub fn now(&self) -> SimTime {
        self.eng.clock_of(self.pid)
    }

    /// Charge `dt` of simulated work to this process's clock.
    ///
    /// In virtual mode the charge is applied in place — no rescheduling
    /// occurs, so a long `advance` does not release the CPU model-wise
    /// (processes are assumed pinned to dedicated CPUs, as on the paper's
    /// batch system). In real mode this is a no-op: real work takes real
    /// time.
    pub fn advance(&self, dt: SimTime) {
        self.eng.charge(self.pid, dt);
    }

    /// Block until another process (or a primitive) schedules a wake for
    /// this pid. Returns the resumption time. Virtual mode only; the sync
    /// primitives never call this in real mode.
    pub(crate) fn block(&self) -> SimTime {
        self.eng.yield_and_wait(self.pid)
    }

    /// Like [`Proc::block`], but also arm a deadline timer: if nothing
    /// else wakes this process first, the scheduler resumes it at
    /// `deadline`. The timer is cancelled on resumption either way, and a
    /// timer that never fires leaves the event-queue metrics untouched.
    pub(crate) fn block_until_deadline(&self, deadline: SimTime) -> SimTime {
        self.eng.schedule_timer(self.pid, deadline.max(self.now()));
        let t = self.eng.yield_and_wait(self.pid);
        self.eng.cancel_timers(self.pid);
        t
    }

    /// The fault plan in force, if any.
    pub fn fault_plan(&self) -> Option<Arc<FaultPlan>> {
        self.eng.faults.get().cloned()
    }

    /// Is happens-before recording live for this process? One relaxed
    /// atomic load; callers gate on [`crate::hb::on`] (which folds this
    /// call away entirely when the `check` feature is off).
    #[inline(always)]
    pub(crate) fn hb_on(&self) -> bool {
        self.eng.mode == ClockMode::Virtual && self.eng.hb.is_on()
    }

    /// This simulation's happens-before recorder.
    pub(crate) fn hb_state(&self) -> &crate::hb::HbState {
        &self.eng.hb
    }

    /// Schedule a wake for this process at absolute time `at`, then block.
    /// Used to model timed waits (polling intervals, timeouts).
    pub fn sleep_until(&self, at: SimTime) {
        match self.eng.mode {
            ClockMode::Virtual => {
                self.eng.schedule(self.pid, at.max(self.now()));
                self.block();
            }
            ClockMode::Real => {
                let now = self.now();
                if at > now {
                    std::thread::sleep(std::time::Duration::from_nanos((at - now).as_nanos()));
                }
            }
        }
    }

    /// Sleep for a relative duration.
    pub fn sleep(&self, dt: SimTime) {
        let t = self.now() + dt;
        self.sleep_until(t);
    }

    /// Schedule a wake for *another* process at absolute time `at`.
    pub(crate) fn wake_other(&self, pid: Pid, at: SimTime) {
        self.eng.schedule(pid, at);
    }

    /// Raise `pid`'s clock to at least `t` (message arrival semantics).
    pub(crate) fn lift_other_clock(&self, pid: Pid, t: SimTime) {
        self.eng.lift_clock(pid, t);
    }

    /// Spawn a child process starting at this process's current time.
    pub fn spawn_child(
        &self,
        name: impl Into<String>,
        node: usize,
        f: impl FnOnce(&Proc) + Send + 'static,
    ) -> Pid {
        let sim = Sim {
            eng: Arc::clone(&self.eng),
        };
        let start = self.now();
        sim.spawn_at(name, node, start, f)
    }

    /// Draw from this process's deterministic RNG.
    pub fn with_rng<R>(&self, f: impl FnOnce(&mut SimRng) -> R) -> R {
        f(&mut self.rng.lock())
    }

    /// Uniform random duration in `[0, max]` from the process RNG
    /// (used for daemon jitter).
    pub fn jitter(&self, max: SimTime) -> SimTime {
        if max == SimTime::ZERO {
            return SimTime::ZERO;
        }
        self.with_rng(|r| SimTime::from_nanos(r.gen_range_u64(0..=max.as_nanos())))
    }
}

impl std::fmt::Debug for Proc {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Proc")
            .field("pid", &self.pid)
            .field("node", &self.node)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> Machine {
        Machine::test_machine()
    }

    #[test]
    fn single_process_advances_clock() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("p0", 0, |p| {
            assert_eq!(p.now(), SimTime::ZERO);
            p.advance(SimTime::from_micros(5));
            assert_eq!(p.now(), SimTime::from_micros(5));
            p.advance(SimTime::from_micros(3));
            assert_eq!(p.now(), SimTime::from_micros(8));
        });
        assert_eq!(sim.run(), SimTime::from_micros(8));
    }

    #[test]
    fn makespan_is_max_over_processes() {
        let sim = Sim::virtual_time(machine(), 1);
        for i in 0..4 {
            sim.spawn(format!("p{i}"), 0, move |p| {
                p.advance(SimTime::from_micros(10 * (i as u64 + 1)));
            });
        }
        assert_eq!(sim.run(), SimTime::from_micros(40));
    }

    #[test]
    fn sleep_until_wakes_at_target() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("sleeper", 0, |p| {
            p.sleep_until(SimTime::from_millis(2));
            assert_eq!(p.now(), SimTime::from_millis(2));
            // Sleeping until the past is a no-op in time.
            p.sleep_until(SimTime::from_millis(1));
            assert_eq!(p.now(), SimTime::from_millis(2));
        });
        assert_eq!(sim.run(), SimTime::from_millis(2));
    }

    #[test]
    fn cross_process_wake() {
        // p1 blocks; p0 wakes it at an explicit later time.
        let sim = Sim::virtual_time(machine(), 1);
        let _p0 = sim.spawn("waker", 0, |p| {
            p.advance(SimTime::from_micros(50));
            p.wake_other(1, SimTime::from_micros(70));
        });
        sim.spawn("waitee", 0, |p| {
            let t = p.block();
            assert_eq!(t, SimTime::from_micros(70));
            assert_eq!(p.now(), SimTime::from_micros(70));
        });
        assert_eq!(sim.run(), SimTime::from_micros(70));
    }

    #[test]
    fn spawn_child_starts_at_parent_time() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("parent", 0, |p| {
            p.advance(SimTime::from_millis(1));
            p.spawn_child("child", 1, |c| {
                assert_eq!(c.now(), SimTime::from_millis(1));
                c.advance(SimTime::from_millis(2));
            });
        });
        assert_eq!(sim.run(), SimTime::from_millis(3));
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn deadlock_is_detected() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("stuck", 0, |p| {
            p.block(); // nobody will ever wake us
        });
        sim.run();
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn process_panic_propagates() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("bad", 0, |_| panic!("boom"));
        sim.spawn("other", 0, |p| {
            p.sleep(SimTime::from_secs(1));
        });
        sim.run();
    }

    #[test]
    fn real_mode_runs_concurrently() {
        let sim = Sim::real_time(machine());
        let flag = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        sim.spawn("setter", 0, move |_| {
            f2.store(true, std::sync::atomic::Ordering::Release);
        });
        let f3 = Arc::clone(&flag);
        sim.spawn("checker", 1, move |_| {
            while !f3.load(std::sync::atomic::Ordering::Acquire) {
                std::hint::spin_loop();
            }
        });
        let t = sim.run();
        assert!(t > SimTime::ZERO);
        assert!(flag.load(std::sync::atomic::Ordering::Acquire));
    }

    #[test]
    fn proc_name_and_event_metric() {
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("alpha", 0, |p| {
            assert_eq!(p.name(), "alpha");
            p.sleep(SimTime::from_micros(1));
            p.sleep(SimTime::from_micros(1));
        });
        let events_before = sim.events_dispatched();
        assert_eq!(events_before, 0);
        let eng = Arc::clone(&sim.eng);
        sim.run();
        // start + two sleeps = 3 dispatches.
        assert_eq!(eng.inner.lock().dispatched, 3);
    }

    #[test]
    fn self_dispatch_costs_no_handoff() {
        // A lone process's timed sleeps pop its own wake events: zero
        // OS-thread handoffs; the only fallback is the startup dispatch.
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("solo", 0, |p| {
            p.sleep(SimTime::from_micros(1));
            p.sleep(SimTime::from_micros(1));
        });
        let stats = sim.stats();
        sim.run();
        assert_eq!(stats.events_dispatched(), 3);
        assert_eq!(stats.sched_fallbacks(), 1, "startup dispatch only");
        assert_eq!(stats.direct_handoffs(), 0, "self-dispatches are free");
    }

    #[test]
    fn pingpong_handoffs_drop_at_least_40_percent_vs_hub_and_spoke() {
        // Hub-and-spoke paid two OS-thread switches per dispatched event
        // (yielder -> scheduler -> successor). Direct handoff must cut
        // the total switch count by at least 40% on the ping-pong
        // workload; by design it achieves ~50% (one per event).
        let sim = Sim::virtual_time(machine(), 1);
        let ch_a: Arc<crate::sync::SimChannel<u32>> = Arc::new(crate::sync::SimChannel::new());
        let ch_b: Arc<crate::sync::SimChannel<u32>> = Arc::new(crate::sync::SimChannel::new());
        let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
        sim.spawn("ping", 0, move |p| {
            for i in 0..200u32 {
                a1.send(p, i, SimTime::from_micros(1));
                let _ = b1.recv(p);
            }
        });
        let (a2, b2) = (ch_a, ch_b);
        sim.spawn("pong", 1, move |p| {
            for _ in 0..200u32 {
                let v = a2.recv(p);
                b2.send(p, v, SimTime::from_micros(1));
            }
        });
        let stats = sim.stats();
        sim.run();
        let events = stats.events_dispatched();
        let switches = stats.direct_handoffs() + 2 * stats.sched_fallbacks();
        let hub_and_spoke = 2 * events;
        assert!(
            switches * 10 <= hub_and_spoke * 6,
            "handoff reduction below 40%: {switches} switches vs hub-and-spoke {hub_and_spoke}"
        );
        assert_eq!(stats.sched_fallbacks(), 1, "startup dispatch only");
    }

    #[test]
    fn cancelled_timers_are_removed_eagerly() {
        // A deadline wait whose wake beats the deadline leaves an armed
        // timer behind; cancellation must remove it from the heap at the
        // cancellation site, not leave it to be skipped at pop.
        let sim = Sim::virtual_time(machine(), 1);
        sim.spawn("waker", 0, |p| {
            p.advance(SimTime::from_micros(5));
            p.wake_other(1, SimTime::from_micros(5));
        });
        sim.spawn("waitee", 0, |p| {
            let t = p.block_until_deadline(SimTime::from_micros(100));
            assert_eq!(t, SimTime::from_micros(5), "wake must beat deadline");
        });
        let stats = sim.stats();
        sim.run();
        assert_eq!(stats.timers_cancelled_eagerly(), 1);
    }

    #[test]
    fn determinism_same_seed_same_interleaving() {
        // Record the order of wakes across two identical runs.
        fn trace(seed: u64) -> Vec<(usize, u64)> {
            let sim = Sim::virtual_time(Machine::test_machine(), seed);
            let log = Arc::new(Mutex::new(Vec::new()));
            for i in 0..8usize {
                let log = Arc::clone(&log);
                sim.spawn(format!("p{i}"), i % 4, move |p| {
                    for _ in 0..5 {
                        let d = p.jitter(SimTime::from_micros(100));
                        p.sleep(d + SimTime::from_nanos(1));
                        log.lock().push((i, p.now().as_nanos()));
                    }
                });
            }
            sim.run();
            let v = log.lock().clone();
            v
        }
        assert_eq!(trace(42), trace(42));
        assert_ne!(trace(42), trace(43));
    }
}
