//! # dynprof-sim — simulation kernel
//!
//! The substrate every other `dynprof-rs` crate runs on: a deterministic
//! discrete-event simulator of a clustered SMP machine, with an alternative
//! real-time mode for measuring the genuine cost of instrumentation code.
//!
//! The paper this workspace reproduces (Thiffault, Voss, Healey, Kim,
//! *Dynamic Instrumentation of Large-Scale MPI and OpenMP Applications*,
//! IPDPS 2003) ran on an IBM Power3 SMP cluster and an IA32 Linux cluster.
//! Both machines are modelled in [`topology`]; the instrumentation cost
//! hierarchy that produces the paper's results is in [`costs`].
//!
//! ## Architecture
//!
//! * [`engine`] — process scheduler and dual clock ([`Sim`], [`Proc`]).
//! * [`fault`] — deterministic seed-driven fault-injection plans.
//! * [`hb`] — happens-before recording and correctness detectors
//!   (`check` feature; zero-cost when off).
//! * [`sync`] — latency-aware channels, barriers, gates, work queues.
//! * [`topology`] — machine models (nodes, CPUs, links, daemon delays).
//! * [`costs`] — probe/trace cost models.
//! * [`rng`] — deterministic per-process randomness.
//! * [`stats`] — online statistics for the measurement harnesses.
//!
//! ## Example
//!
//! ```
//! use dynprof_sim::{Machine, Sim, SimTime};
//! use dynprof_sim::sync::SimBarrier;
//! use std::sync::Arc;
//!
//! let sim = Sim::virtual_time(Machine::test_machine(), 42);
//! let bar = Arc::new(SimBarrier::new(4, SimTime::from_micros(3)));
//! for rank in 0..4u64 {
//!     let bar = Arc::clone(&bar);
//!     sim.spawn(format!("rank{rank}"), 0, move |p| {
//!         p.advance(SimTime::from_micros(10 * (rank + 1)));
//!         bar.wait(p);
//!     });
//! }
//! // Everyone leaves at max arrival (40us) + barrier cost (3us).
//! assert_eq!(sim.run(), SimTime::from_micros(43));
//! ```

#![warn(missing_docs)]

pub(crate) mod co;
pub mod costs;
pub mod engine;
pub mod fault;
pub mod hb;
pub mod rng;
pub mod stats;
pub mod sync;
pub mod time;
pub mod topology;

pub use costs::ProbeCosts;
pub use engine::{ClockMode, Pid, Proc, ProcBackend, Sim};
pub use fault::{FaultPlan, FaultProfile, FaultSpec};
pub use stats::OnlineStats;
pub use time::SimTime;
pub use topology::{CpuModel, DaemonModel, LinkModel, Machine};
