//! Happens-before correctness analysis (the `check` cargo feature).
//!
//! The paper's premise is that instrumentation must be *safe to insert
//! while the program runs* (trampoline patching §3, `VT_confsync` safe
//! points §5). This module provides the machinery to prove a simulated
//! run honoured those invariants: every process carries a vector clock,
//! the primitives in [`crate::sync`] record the happens-before edges they
//! create (message send→receive, barrier arrive→release, gate open→pass,
//! queue push→pop), and higher layers add semantic events on top — MPI
//! collective entries, confsync epoch decisions/applications, probe
//! patches. After the run, [`CheckHandle::report`] replays the recorded
//! history through the detectors:
//!
//! * **collective mismatch** — ranks of one job disagree on the operation
//!   or root of their k-th collective, or not all ranks entered it
//!   (error);
//! * **epoch safety** — a confsync delta was applied by a rank without
//!   the epoch's decision happening-before the application — the paper's
//!   §5 invariant (error);
//! * **unmatched sends** — messages still undelivered at shutdown /
//!   never-drained channels (warning);
//! * **barrier divergence** — the participant set of a barrier changed
//!   between generations (warning);
//! * **unsafe patch** — a probe was installed or removed while the
//!   target image was not suspended (warning; the DPCL daemons accept
//!   this, but the managed session layer always suspends first).
//!
//! # Cost model
//!
//! The gating mirrors `dynprof-obs`: with the `check` feature disabled,
//! [`compiled`] is a `const fn` returning `false` and every recording
//! site folds away entirely; with the feature enabled but
//! [`crate::Sim::enable_check`] not called, each site costs one relaxed
//! atomic load. Recording never charges virtual time and never touches
//! the metrics registry, so toggling the checker cannot change simulated
//! results — figure JSON is byte-identical either way.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::engine::{Pid, Proc};

/// True iff the crate was built with the `check` feature: the
/// compile-time gate. With the feature off this is a `const fn` returning
/// `false`, so every `if hb::on(p) { … }` site folds away.
#[cfg(feature = "check")]
#[inline(always)]
pub fn compiled() -> bool {
    true
}

/// True iff the crate was built with the `check` feature (it was not).
#[cfg(not(feature = "check"))]
#[inline(always)]
pub const fn compiled() -> bool {
    false
}

/// Should this event be recorded? Compile-time gate (`check` feature)
/// plus the per-simulation runtime flag plus virtual clock mode.
#[inline(always)]
pub fn on(p: &Proc) -> bool {
    compiled() && p.hb_on()
}

/// A fresh process-global identifier for a trackable object (channel,
/// barrier, gate, queue, MPI job, VT library instance). Returns 0 when
/// the `check` feature is off — the ids are only ever used as recording
/// keys, so collisions on 0 are harmless there.
#[cfg(feature = "check")]
pub fn unique_id() -> u64 {
    use std::sync::atomic::AtomicU64;
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

/// A fresh object identifier (`check` feature off: always 0).
#[cfg(not(feature = "check"))]
pub const fn unique_id() -> u64 {
    0
}

// ---------------------------------------------------------------------------
// Vector clocks
// ---------------------------------------------------------------------------

/// A vector clock over the simulation's (dense) pid space.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    fn tick(&mut self, pid: Pid) {
        if self.0.len() <= pid {
            self.0.resize(pid + 1, 0);
        }
        self.0[pid] += 1;
    }

    fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Componentwise `self <= other` — i.e. every event `self` has seen,
    /// `other` has seen too: `self` happens-before-or-equals `other`.
    pub fn leq(&self, other: &VClock) -> bool {
        self.0
            .iter()
            .enumerate()
            .all(|(i, &c)| c <= other.0.get(i).copied().unwrap_or(0))
    }
}

// ---------------------------------------------------------------------------
// Findings
// ---------------------------------------------------------------------------

/// How serious a finding is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Suspicious but tolerated (e.g. undelivered control messages under
    /// a fault plan that duplicates traffic).
    Warning,
    /// A broken invariant: the run cannot be trusted.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One detector hit.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Severity class.
    pub severity: Severity,
    /// Which detector fired (stable kebab-case name).
    pub detector: &'static str,
    /// Human-readable description, with process names where available.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}[{}]: {}", self.severity, self.detector, self.message)
    }
}

/// The outcome of a happens-before analysis over one simulation run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// All detector hits, errors first.
    pub findings: Vec<Finding>,
}

impl Report {
    /// Findings with [`Severity::Error`].
    pub fn errors(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Error)
            .collect()
    }

    /// Findings with [`Severity::Warning`].
    pub fn warnings(&self) -> Vec<&Finding> {
        self.findings
            .iter()
            .filter(|f| f.severity == Severity::Warning)
            .collect()
    }

    /// No findings at all.
    pub fn is_clean(&self) -> bool {
        self.findings.is_empty()
    }

    /// One line per finding.
    pub fn render(&self) -> String {
        self.findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

// ---------------------------------------------------------------------------
// Recorded history
// ---------------------------------------------------------------------------

#[derive(Default)]
struct CollSite {
    job_name: String,
    size: usize,
    /// (rank, op, root) per entering rank.
    entries: Vec<(usize, &'static str, Option<usize>)>,
}

#[derive(Default)]
struct HbInner {
    /// Per-pid vector clocks and names (dense, grown on registration).
    clocks: Vec<VClock>,
    names: Vec<String>,
    /// In-flight sends: (channel, seq) → (sender pid, clock at send).
    /// Entries are removed when received; leftovers are unmatched sends.
    chan_sends: BTreeMap<(u64, u64), (Pid, VClock)>,
    /// Accumulated clock of everyone who arrived at (barrier, generation).
    barrier_accum: BTreeMap<(u64, u64), VClock>,
    /// Participant sets per (barrier, generation).
    barrier_parts: BTreeMap<u64, BTreeMap<u64, BTreeSet<Pid>>>,
    /// Cumulative clock of every opener of a gate.
    gates: BTreeMap<u64, VClock>,
    /// Cumulative clock of every pusher into a queue (conservative).
    queues: BTreeMap<u64, VClock>,
    /// Collective entries keyed by (job id, per-rank collective seq).
    colls: BTreeMap<(u64, u64), CollSite>,
    /// Confsync epoch decisions: (lib id, round) → (decider, clock).
    epoch_decisions: BTreeMap<(u64, u64), (Pid, VClock)>,
    /// Confsync epoch applications: (lib id, round, applier, clock).
    epoch_applies: Vec<(u64, u64, Pid, VClock)>,
    /// Aborted (rolled-back) epochs: (lib id, round) → aborting pid. An
    /// instrumentation transaction that fails its vote records its epoch
    /// here; any apply of such an epoch is a partial-state bug.
    epoch_aborts: BTreeMap<(u64, u64), Pid>,
    /// Patches performed on a non-suspended image: (pid, description).
    unsafe_patches: Vec<(Pid, String)>,
}

impl HbInner {
    fn name(&self, pid: Pid) -> String {
        match self.names.get(pid) {
            Some(n) if !n.is_empty() => n.clone(),
            _ => format!("proc#{pid}"),
        }
    }

    fn clock_mut(&mut self, pid: Pid) -> &mut VClock {
        if self.clocks.len() <= pid {
            self.clocks.resize(pid + 1, VClock::default());
        }
        &mut self.clocks[pid]
    }

    /// Tick `pid`'s own component and return a snapshot of its clock.
    fn tick(&mut self, pid: Pid) -> VClock {
        let c = self.clock_mut(pid);
        c.tick(pid);
        c.clone()
    }
}

/// Per-simulation happens-before recorder. One lives inside every
/// [`crate::Sim`]; obtain a [`CheckHandle`] to read the verdict after
/// the run.
pub struct HbState {
    enabled: AtomicBool,
    inner: Mutex<HbInner>,
}

impl HbState {
    pub(crate) fn new() -> HbState {
        HbState {
            enabled: AtomicBool::new(false),
            inner: Mutex::new(HbInner::default()),
        }
    }

    pub(crate) fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    #[inline(always)]
    pub(crate) fn is_on(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Remember `pid`'s display name (called at spawn).
    pub(crate) fn register(&self, pid: Pid, name: &str) {
        let mut g = self.inner.lock();
        if g.names.len() <= pid {
            g.names.resize(pid + 1, String::new());
        }
        g.names[pid] = name.to_string();
    }
}

// ---------------------------------------------------------------------------
// Recording API (called by sync primitives and higher layers)
// ---------------------------------------------------------------------------

/// Record a message send on channel `chan` with envelope sequence `seq`.
pub fn chan_send(p: &Proc, chan: u64, seq: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.chan_sends.insert((chan, seq), (p.pid(), clock));
}

/// Record the receipt of the envelope `(chan, seq)`: joins the sender's
/// clock at send into the receiver's clock.
pub fn chan_recv(p: &Proc, chan: u64, seq: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    if let Some((_, sender_clock)) = g.chan_sends.remove(&(chan, seq)) {
        g.clock_mut(p.pid()).join(&sender_clock);
    }
}

/// Record arrival at generation `gen` of barrier `bar`.
pub fn barrier_arrive(p: &Proc, bar: u64, gen: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.barrier_accum.entry((bar, gen)).or_default().join(&clock);
    g.barrier_parts
        .entry(bar)
        .or_default()
        .entry(gen)
        .or_default()
        .insert(p.pid());
}

/// Record departure from generation `gen` of barrier `bar`: joins the
/// merged clock of every arriver into the departing process.
pub fn barrier_depart(p: &Proc, bar: u64, gen: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    if let Some(merged) = g.barrier_accum.get(&(bar, gen)).cloned() {
        g.clock_mut(p.pid()).join(&merged);
    }
}

/// Record the opening of gate `gate`.
pub fn gate_open(p: &Proc, gate: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.gates.entry(gate).or_default().join(&clock);
}

/// Record a process passing through open gate `gate`.
pub fn gate_pass(p: &Proc, gate: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    if let Some(openers) = g.gates.get(&gate).cloned() {
        g.clock_mut(p.pid()).join(&openers);
    }
}

/// Record a push into (or closing of) work queue `q`. Conservative: pops
/// join the cumulative clock of *all* pushers, which can only over- (never
/// under-) approximate the ordering.
pub fn queue_push(p: &Proc, q: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.queues.entry(q).or_default().join(&clock);
}

/// Record a successful pop from work queue `q`.
pub fn queue_pop(p: &Proc, q: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    if let Some(pushers) = g.queues.get(&q).cloned() {
        g.clock_mut(p.pid()).join(&pushers);
    }
}

/// Record that `rank` of job `job` (display name `job_name`, `size`
/// ranks) entered its `seq`-th collective `op` (rooted at `root`, if
/// rooted). Called by every MPI collective before any traffic moves.
#[allow(clippy::too_many_arguments)]
pub fn collective(
    p: &Proc,
    job: u64,
    job_name: &str,
    size: usize,
    rank: usize,
    seq: u64,
    op: &'static str,
    root: Option<usize>,
) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    let site = g.colls.entry((job, seq)).or_default();
    if site.entries.is_empty() {
        site.job_name = job_name.to_string();
        site.size = size;
    }
    site.entries.push((rank, op, root));
}

/// Record that the monitor rank decided configuration epoch `round` of
/// VT library instance `lib` (the safe-point decision, paper §5).
pub fn epoch_decision(p: &Proc, lib: u64, round: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.epoch_decisions
        .entry((lib, round))
        .or_insert((p.pid(), clock));
}

/// Record that the calling rank applied the delta of epoch `round`
/// (immediately at the safe point, or later via deferred catch-up).
pub fn epoch_apply(p: &Proc, lib: u64, round: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    let clock = g.tick(p.pid());
    g.epoch_applies.push((lib, round, p.pid(), clock));
}

/// Record that epoch `round` of `lib` was aborted (rolled back) rather
/// than committed. The epoch-safety detector reports any application of
/// an aborted epoch as an error: an abort means every staged change was
/// discarded, so an apply anywhere is exactly the partially-instrumented
/// state the 2PC control plane exists to prevent.
pub fn epoch_abort(p: &Proc, lib: u64, round: u64) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    let pid = p.pid();
    g.epoch_aborts.insert((lib, round), pid);
}

/// Record a probe install/remove performed while the target image was
/// not suspended.
pub fn unsafe_patch(p: &Proc, detail: &str) {
    if !on(p) {
        return;
    }
    let mut g = p.hb_state().inner.lock();
    g.tick(p.pid());
    let pid = p.pid();
    let detail = detail.to_string();
    g.unsafe_patches.push((pid, detail));
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

/// A read handle onto a simulation's recorded happens-before history.
/// Obtain with [`crate::Sim::check_handle`] *before* `run` consumes the
/// `Sim`; call [`CheckHandle::report`] after the run.
#[derive(Clone)]
pub struct CheckHandle {
    state: Arc<HbState>,
}

impl CheckHandle {
    pub(crate) fn new(state: Arc<HbState>) -> CheckHandle {
        CheckHandle { state }
    }

    /// Was recording enabled on this simulation?
    pub fn enabled(&self) -> bool {
        self.state.is_on()
    }

    /// Run every detector over the recorded history.
    pub fn report(&self) -> Report {
        let g = self.state.inner.lock();
        let mut errors = Vec::new();
        let mut warnings = Vec::new();

        // Collective mismatch: within one job, the k-th collective of
        // every rank must agree on op and root, and all ranks must enter.
        for (&(_job, seq), site) in &g.colls {
            let ops: BTreeSet<&str> = site.entries.iter().map(|e| e.1).collect();
            if ops.len() > 1 {
                let detail: Vec<String> = site
                    .entries
                    .iter()
                    .map(|(r, op, _)| format!("rank {r}: {op}"))
                    .collect();
                errors.push(Finding {
                    severity: Severity::Error,
                    detector: "collective-mismatch",
                    message: format!(
                        "job {:?}: collective #{seq}: ranks entered different \
                         operations ({})",
                        site.job_name,
                        detail.join(", ")
                    ),
                });
                continue;
            }
            let op = site.entries.first().map(|e| e.1).unwrap_or("?");
            let roots: BTreeSet<Option<usize>> = site.entries.iter().map(|e| e.2).collect();
            if roots.len() > 1 {
                let detail: Vec<String> = site
                    .entries
                    .iter()
                    .map(|(r, _, root)| format!("rank {r}: root {root:?}"))
                    .collect();
                errors.push(Finding {
                    severity: Severity::Error,
                    detector: "collective-mismatch",
                    message: format!(
                        "job {:?}: collective #{seq} ({op}): ranks disagree on \
                         the root ({})",
                        site.job_name,
                        detail.join(", ")
                    ),
                });
            }
            let mut ranks: Vec<usize> = site.entries.iter().map(|e| e.0).collect();
            ranks.sort_unstable();
            ranks.dedup();
            if ranks.len() != site.entries.len() {
                errors.push(Finding {
                    severity: Severity::Error,
                    detector: "collective-mismatch",
                    message: format!(
                        "job {:?}: collective #{seq} ({op}): a rank entered twice \
                         (collective streams desynchronized)",
                        site.job_name
                    ),
                });
            } else if site.entries.len() != site.size {
                errors.push(Finding {
                    severity: Severity::Error,
                    detector: "collective-mismatch",
                    message: format!(
                        "job {:?}: collective #{seq} ({op}): only {} of {} ranks \
                         entered",
                        site.job_name,
                        site.entries.len(),
                        site.size
                    ),
                });
            }
        }

        // Epoch safety (paper §5): every application of a config delta
        // must be ordered after the epoch's decision, and an aborted
        // epoch must never be applied at all.
        for (lib, round, pid, clock) in &g.epoch_applies {
            if let Some(aborter) = g.epoch_aborts.get(&(*lib, *round)) {
                errors.push(Finding {
                    severity: Severity::Error,
                    detector: "epoch-safety",
                    message: format!(
                        "epoch {round}: {} applied changes of an epoch that {} \
                         aborted — partially-instrumented state",
                        g.name(*pid),
                        g.name(*aborter)
                    ),
                });
                continue;
            }
            match g.epoch_decisions.get(&(*lib, *round)) {
                None => errors.push(Finding {
                    severity: Severity::Error,
                    detector: "epoch-safety",
                    message: format!(
                        "confsync epoch {round}: {} applied a config delta but \
                         no safe-point decision was recorded for that epoch",
                        g.name(*pid)
                    ),
                }),
                Some((decider, decision_clock)) => {
                    if !decision_clock.leq(clock) {
                        errors.push(Finding {
                            severity: Severity::Error,
                            detector: "epoch-safety",
                            message: format!(
                                "confsync epoch {round}: {} applied the config \
                                 delta without the decision by {} \
                                 happening-before it",
                                g.name(*pid),
                                g.name(*decider)
                            ),
                        });
                    }
                }
            }
        }

        // Unmatched sends / never-drained channels at shutdown.
        let mut per_chan: BTreeMap<u64, (usize, Pid)> = BTreeMap::new();
        for (&(chan, _), &(sender, _)) in &g.chan_sends {
            per_chan.entry(chan).or_insert((0, sender)).0 += 1;
        }
        for (chan, (count, first_sender)) in per_chan {
            warnings.push(Finding {
                severity: Severity::Warning,
                detector: "unmatched-send",
                message: format!(
                    "channel #{chan}: {count} message(s) sent but never received \
                     (first sender: {})",
                    g.name(first_sender)
                ),
            });
        }

        // Barrier participation divergence across generations.
        for (bar, gens) in &g.barrier_parts {
            let sets: BTreeSet<&BTreeSet<Pid>> = gens.values().collect();
            if sets.len() > 1 {
                let render = |s: &BTreeSet<Pid>| {
                    s.iter()
                        .map(|&pid| g.name(pid))
                        .collect::<Vec<_>>()
                        .join(", ")
                };
                let mut it = sets.iter();
                let (a, b) = (it.next().unwrap(), it.next().unwrap());
                warnings.push(Finding {
                    severity: Severity::Warning,
                    detector: "barrier-divergence",
                    message: format!(
                        "barrier #{bar}: participant set changed between \
                         generations ({{{}}} vs {{{}}})",
                        render(a),
                        render(b)
                    ),
                });
            }
        }

        // Patches on a live (non-suspended) image.
        for (pid, detail) in &g.unsafe_patches {
            warnings.push(Finding {
                severity: Severity::Warning,
                detector: "unsafe-patch",
                message: format!("{}: {detail}", g.name(*pid)),
            });
        }

        errors.extend(warnings);
        Report { findings: errors }
    }
}

#[cfg(all(test, feature = "check"))]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::sync::{SimBarrier, SimChannel};
    use crate::time::SimTime;
    use crate::topology::Machine;

    fn checked_sim(seed: u64) -> (Sim, CheckHandle) {
        let sim = Sim::virtual_time(Machine::test_machine(), seed);
        sim.enable_check();
        let h = sim.check_handle();
        (sim, h)
    }

    #[test]
    fn clean_message_exchange_has_no_findings() {
        let (sim, h) = checked_sim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("tx", 0, move |p| tx.send(p, 1, SimTime::from_micros(5)));
        let rx = Arc::clone(&ch);
        sim.spawn("rx", 1, move |p| {
            rx.recv(p);
        });
        sim.run();
        let report = h.report();
        assert!(
            report.is_clean(),
            "unexpected findings:\n{}",
            report.render()
        );
    }

    #[test]
    fn undelivered_message_is_an_unmatched_send() {
        let (sim, h) = checked_sim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("tx", 0, move |p| tx.send(p, 1, SimTime::from_micros(5)));
        sim.run();
        let report = h.report();
        assert!(report.errors().is_empty());
        assert_eq!(report.warnings().len(), 1);
        assert_eq!(report.warnings()[0].detector, "unmatched-send");
        assert!(report.warnings()[0].message.contains("tx"));
    }

    #[test]
    fn barrier_joins_clocks_of_all_participants() {
        let (sim, h) = checked_sim(1);
        let bar = Arc::new(SimBarrier::new(3, SimTime::ZERO));
        for i in 0..3u64 {
            let b = Arc::clone(&bar);
            sim.spawn(format!("p{i}"), 0, move |p| {
                p.advance(SimTime::from_micros(i));
                b.wait(p);
            });
        }
        sim.run();
        assert!(h.report().is_clean());
    }

    #[test]
    fn collective_root_mismatch_is_an_error() {
        let (sim, h) = checked_sim(1);
        for rank in 0..2usize {
            sim.spawn(format!("r{rank}"), 0, move |p| {
                // Both ranks enter collective #0, but claim different roots.
                collective(p, 7, "job", 2, rank, 0, "bcast", Some(rank));
            });
        }
        sim.run();
        let report = h.report();
        let errs = report.errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].detector, "collective-mismatch");
        assert!(errs[0].message.contains("root"));
    }

    #[test]
    fn collective_missing_rank_is_an_error() {
        let (sim, h) = checked_sim(1);
        sim.spawn("r0", 0, move |p| {
            collective(p, 9, "job", 2, 0, 0, "barrier", None);
        });
        sim.run();
        let errs_report = h.report();
        let errs = errs_report.errors();
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("only 1 of 2"));
    }

    #[test]
    fn epoch_apply_without_order_is_an_error() {
        let (sim, h) = checked_sim(1);
        sim.spawn("decider", 0, |p| epoch_decision(p, 3, 1));
        // No message from decider to applier: the apply is unordered.
        sim.spawn("applier", 1, |p| epoch_apply(p, 3, 1));
        sim.run();
        let report = h.report();
        let errs = report.errors();
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].detector, "epoch-safety");
    }

    #[test]
    fn applying_an_aborted_epoch_is_an_error() {
        let (sim, h) = checked_sim(1);
        let ch: Arc<SimChannel<u8>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("coordinator", 0, move |p| {
            epoch_decision(p, 5, 2);
            epoch_abort(p, 5, 2);
            tx.send(p, 0, SimTime::from_micros(1));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("daemon", 1, move |p| {
            rx.recv(p);
            // Applies despite the abort — ordered, but still a bug.
            epoch_apply(p, 5, 2);
        });
        sim.run();
        let report = h.report();
        let errs = report.errors();
        assert_eq!(errs.len(), 1, "{}", report.render());
        assert_eq!(errs[0].detector, "epoch-safety");
        assert!(errs[0].message.contains("aborted"));
    }

    #[test]
    fn epoch_apply_ordered_through_channel_is_clean() {
        let (sim, h) = checked_sim(1);
        let ch: Arc<SimChannel<u8>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("decider", 0, move |p| {
            epoch_decision(p, 4, 1);
            tx.send(p, 0, SimTime::from_micros(1));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("applier", 1, move |p| {
            rx.recv(p);
            epoch_apply(p, 4, 1);
        });
        sim.run();
        let report = h.report();
        assert!(report.errors().is_empty(), "{}", report.render());
    }

    #[test]
    fn disabled_recording_is_inert() {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        let h = sim.check_handle();
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("tx", 0, move |p| tx.send(p, 1, SimTime::from_micros(5)));
        sim.run();
        assert!(!h.enabled());
        assert!(h.report().is_clean(), "nothing may be recorded when off");
    }
}
