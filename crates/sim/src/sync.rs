//! Simulation-aware synchronization primitives.
//!
//! Three building blocks sit under every higher layer:
//!
//! * [`SimChannel`] — a mailbox whose messages carry *arrival times*
//!   (`sender.now() + latency`). Receivers cannot observe a message before
//!   it arrives. MPI point-to-point, DPCL daemon traffic, and the
//!   instrumenter callback path are all built on it.
//! * [`SimBarrier`] — a cyclic barrier over a fixed participant count with
//!   a configurable release cost; used by `MPI_Barrier` and OpenMP joins.
//! * [`SimGate`] — a broadcast flag: processes blocked on the gate are all
//!   released when it opens (the `DYNVT_spin` spin-variable and the
//!   `configuration_break` breakpoint resume are gates).
//!
//! Each primitive has two internal implementations selected by the
//! simulation's [`ClockMode`]: in virtual mode blocking is mediated by the
//! discrete-event scheduler (one runnable process at a time, so the
//! unlock-then-yield pattern is race-free by construction); in real mode
//! the primitives are ordinary mutex/condvar constructions.
//!
//! No primitive here suspends a process on its own: every virtual-mode
//! blocking path releases its internal lock and then calls the engine's
//! `yield_and_wait`, which is the *only* suspension point in the crate
//! (DESIGN §18's suspension-point inventory). The engine's process
//! backend — OS threads or stackful coroutines — is therefore invisible
//! at this layer: these primitives behave identically on both, and the
//! differential suite in `tests/backend_diff.rs` holds them to that.

use std::collections::VecDeque;

use dynprof_obs as obs;
use parking_lot::{Condvar, Mutex};

use crate::engine::{ClockMode, Pid, Proc};
use crate::hb;
use crate::time::SimTime;

// ---------------------------------------------------------------------------
// SimChannel
// ---------------------------------------------------------------------------

struct Envelope<T> {
    arrival: SimTime,
    seq: u64,
    msg: T,
}

struct ChannelState<T> {
    queue: Vec<Envelope<T>>,
    waiters: Vec<Pid>,
    seq: u64,
    /// FIFO mode: latest enqueued arrival time (delivery never reorders).
    last_arrival: SimTime,
}

/// A latency-aware mailbox. Any process may send; any process may receive.
/// Messages become visible to receivers only once the receiver's clock has
/// reached the message's arrival time.
///
/// A channel may be created FIFO ([`SimChannel::new_fifo`]): deliveries
/// then never reorder, as over a stream socket — each message arrives no
/// earlier than the one enqueued before it. The DPCL daemon connections
/// use this; MPI mailboxes do not (the network may reorder).
pub struct SimChannel<T> {
    state: Mutex<ChannelState<T>>,
    cv: Condvar,
    fifo: bool,
    /// Identity for happens-before recording (0 when `check` is off).
    id: u64,
}

impl<T> Default for SimChannel<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SimChannel<T> {
    /// An empty channel.
    pub fn new() -> SimChannel<T> {
        Self::with_fifo(false)
    }

    /// An empty FIFO channel (stream-ordered delivery).
    pub fn new_fifo() -> SimChannel<T> {
        Self::with_fifo(true)
    }

    fn with_fifo(fifo: bool) -> SimChannel<T> {
        SimChannel {
            state: Mutex::new(ChannelState {
                queue: Vec::new(),
                waiters: Vec::new(),
                seq: 0,
                last_arrival: SimTime::ZERO,
            }),
            cv: Condvar::new(),
            fifo,
            id: hb::unique_id(),
        }
    }

    /// Send `msg`, arriving `latency` after the sender's current time.
    /// In real mode the latency is ignored (delivery is immediate).
    pub fn send(&self, p: &Proc, msg: T, latency: SimTime) {
        let mut arrival = p.now() + latency;
        let mut s = self.state.lock();
        if self.fifo {
            arrival = arrival.max(s.last_arrival);
            s.last_arrival = arrival;
        }
        s.seq += 1;
        let seq = s.seq;
        if hb::on(p) {
            hb::chan_send(p, self.id, seq);
        }
        s.queue.push(Envelope { arrival, seq, msg });
        match p.mode() {
            ClockMode::Virtual => {
                for pid in s.waiters.drain(..) {
                    p.wake_other(pid, arrival);
                }
            }
            ClockMode::Real => {
                self.cv.notify_all();
            }
        }
    }

    /// Send a **control-plane** message subject to the simulation's fault
    /// plan: the plan may drop it, duplicate it, or add delivery delay
    /// (`T: Clone` is needed for duplication). With no plan installed —
    /// or a plan whose link faults are all zero — this is exactly
    /// [`SimChannel::send`].
    ///
    /// DPCL daemon traffic goes through here; application-level MPI and
    /// the instrumenter callback path deliberately do not (see the fault
    /// model in DESIGN.md: the modelled switch delivers reliably, the
    /// control plane is where the tool must tolerate loss).
    pub fn send_ctl(&self, p: &Proc, msg: T, latency: SimTime)
    where
        T: Clone,
    {
        let plan = match p.fault_plan() {
            Some(plan) if plan.links_enabled() && p.mode() == ClockMode::Virtual => plan,
            _ => return self.send(p, msg, latency),
        };
        let d = plan.decide_link();
        if d.drop {
            if obs::enabled() {
                obs::counter("fault.msgs_dropped").inc();
            }
            return;
        }
        if obs::enabled() && d.extra_delay > SimTime::ZERO {
            obs::counter("fault.msgs_delayed").inc();
        }
        if d.duplicate {
            if obs::enabled() {
                obs::counter("fault.msgs_duplicated").inc();
            }
            self.send(p, msg.clone(), latency + d.extra_delay);
        }
        self.send(p, msg, latency + d.extra_delay);
    }

    /// Number of messages currently queued (arrived or in flight).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// True if no messages are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Receive the earliest-arriving message. Blocks until one arrives.
    pub fn recv(&self, p: &Proc) -> T {
        self.recv_match(p, |_| true)
    }

    /// Receive the earliest-arriving message satisfying `pred`.
    /// Blocks until such a message arrives.
    pub fn recv_match(&self, p: &Proc, mut pred: impl FnMut(&T) -> bool) -> T {
        match p.mode() {
            ClockMode::Virtual => loop {
                let mut s = self.state.lock();
                // Earliest matching message, by (arrival, seq).
                let best = s
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| pred(&e.msg))
                    .min_by_key(|(_, e)| (e.arrival, e.seq))
                    .map(|(i, e)| (i, e.arrival));
                match best {
                    Some((i, arrival)) if arrival <= p.now() => {
                        let env = s.queue.swap_remove(i);
                        if hb::on(p) {
                            hb::chan_recv(p, self.id, env.seq);
                        }
                        return env.msg;
                    }
                    Some((_, arrival)) => {
                        // Matching message still in flight: sleep to it.
                        // (If an even earlier-arriving match is enqueued
                        // while we sleep, we take it on re-check but our
                        // clock has already advanced to `arrival` — a
                        // bounded conservative skew, never a rewind.)
                        drop(s);
                        p.sleep_until(arrival);
                    }
                    None => {
                        let pid = p.pid();
                        if !s.waiters.contains(&pid) {
                            s.waiters.push(pid);
                        }
                        drop(s);
                        // Race-free: no other process can run between the
                        // drop above and this yield in virtual mode.
                        p.block();
                        // Deregister (we may have been woken spuriously).
                        let mut s = self.state.lock();
                        s.waiters.retain(|&w| w != pid);
                    }
                }
            },
            ClockMode::Real => {
                let mut s = self.state.lock();
                loop {
                    if let Some((i, _)) = s
                        .queue
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| pred(&e.msg))
                        .min_by_key(|(_, e)| (e.arrival, e.seq))
                    {
                        return s.queue.swap_remove(i).msg;
                    }
                    self.cv.wait(&mut s);
                }
            }
        }
    }

    /// Like [`SimChannel::recv_match`], but give up at `deadline`:
    /// returns `None` if no matching message has arrived by then.
    ///
    /// In the common case — the message arrives first — the armed
    /// deadline timer is cancelled before it fires, so a run in which no
    /// timeout ever triggers is indistinguishable (to the event-queue
    /// metrics and every clock) from one using plain `recv_match`.
    pub fn recv_match_deadline(
        &self,
        p: &Proc,
        mut pred: impl FnMut(&T) -> bool,
        deadline: SimTime,
    ) -> Option<T> {
        match p.mode() {
            ClockMode::Virtual => loop {
                let mut s = self.state.lock();
                let best = s
                    .queue
                    .iter()
                    .enumerate()
                    .filter(|(_, e)| pred(&e.msg))
                    .min_by_key(|(_, e)| (e.arrival, e.seq))
                    .map(|(i, e)| (i, e.arrival));
                match best {
                    Some((i, arrival)) if arrival <= p.now() => {
                        let env = s.queue.swap_remove(i);
                        if hb::on(p) {
                            hb::chan_recv(p, self.id, env.seq);
                        }
                        return Some(env.msg);
                    }
                    Some((_, arrival)) if arrival <= deadline => {
                        // In flight and due before the deadline: sleep to it.
                        drop(s);
                        p.sleep_until(arrival);
                    }
                    _ => {
                        // No match, or the only matches arrive too late.
                        if p.now() >= deadline {
                            return None;
                        }
                        let pid = p.pid();
                        if !s.waiters.contains(&pid) {
                            s.waiters.push(pid);
                        }
                        drop(s);
                        p.block_until_deadline(deadline);
                        let mut s = self.state.lock();
                        s.waiters.retain(|&w| w != pid);
                    }
                }
            },
            ClockMode::Real => {
                let mut s = self.state.lock();
                loop {
                    if let Some((i, _)) = s
                        .queue
                        .iter()
                        .enumerate()
                        .filter(|(_, e)| pred(&e.msg))
                        .min_by_key(|(_, e)| (e.arrival, e.seq))
                    {
                        return Some(s.queue.swap_remove(i).msg);
                    }
                    let now = p.now();
                    if now >= deadline {
                        return None;
                    }
                    self.cv.wait_for(
                        &mut s,
                        std::time::Duration::from_nanos((deadline - now).as_nanos()),
                    );
                }
            }
        }
    }

    /// Receive a matching message if one has already arrived.
    pub fn try_recv_match(&self, p: &Proc, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut s = self.state.lock();
        let now = p.now();
        let best = s
            .queue
            .iter()
            .enumerate()
            .filter(|(_, e)| pred(&e.msg) && (p.mode() == ClockMode::Real || e.arrival <= now))
            .min_by_key(|(_, e)| (e.arrival, e.seq))
            .map(|(i, _)| i);
        best.map(|i| {
            let env = s.queue.swap_remove(i);
            if hb::on(p) {
                hb::chan_recv(p, self.id, env.seq);
            }
            env.msg
        })
    }

    /// Receive a message if one has already arrived.
    pub fn try_recv(&self, p: &Proc) -> Option<T> {
        self.try_recv_match(p, |_| true)
    }

    /// Arrival time of the earliest matching message (for probing).
    pub fn peek_arrival(&self, pred: impl Fn(&T) -> bool) -> Option<SimTime> {
        let s = self.state.lock();
        s.queue
            .iter()
            .filter(|e| pred(&e.msg))
            .map(|e| e.arrival)
            .min()
    }
}

// ---------------------------------------------------------------------------
// SimBarrier
// ---------------------------------------------------------------------------

struct BarrierState {
    generation: u64,
    arrived: usize,
    /// Max arrival time within the current generation (virtual mode).
    latest: SimTime,
    waiters: Vec<Pid>,
    /// Release time of the previous generation, for stragglers re-checking.
    release_time: SimTime,
}

/// A cyclic barrier over `n` participants.
///
/// In virtual mode the barrier releases every participant at
/// `max(arrival times) + cost`, modelling a synchronization whose cost is
/// set at construction (e.g. `O(log n)` tree barrier time).
pub struct SimBarrier {
    n: usize,
    cost: SimTime,
    state: Mutex<BarrierState>,
    cv: Condvar,
    /// Identity for happens-before recording (0 when `check` is off).
    id: u64,
}

impl SimBarrier {
    /// Barrier over `n` participants with the given per-episode release
    /// cost. Panics if `n == 0`.
    pub fn new(n: usize, cost: SimTime) -> SimBarrier {
        assert!(n > 0, "barrier over zero participants");
        SimBarrier {
            n,
            cost,
            state: Mutex::new(BarrierState {
                generation: 0,
                arrived: 0,
                latest: SimTime::ZERO,
                waiters: Vec::new(),
                release_time: SimTime::ZERO,
            }),
            cv: Condvar::new(),
            id: hb::unique_id(),
        }
    }

    /// Number of participants.
    pub fn participants(&self) -> usize {
        self.n
    }

    /// Enter the barrier; returns the release time. The calling process's
    /// clock is raised to the release time.
    pub fn wait(&self, p: &Proc) -> SimTime {
        match p.mode() {
            ClockMode::Virtual => {
                let mut s = self.state.lock();
                let my_gen = s.generation;
                s.arrived += 1;
                s.latest = s.latest.max(p.now());
                if hb::on(p) {
                    hb::barrier_arrive(p, self.id, my_gen);
                }
                if s.arrived == self.n {
                    // Last arriver releases the episode.
                    let release = s.latest + self.cost;
                    s.generation += 1;
                    s.arrived = 0;
                    s.latest = SimTime::ZERO;
                    s.release_time = release;
                    let waiters = std::mem::take(&mut s.waiters);
                    drop(s);
                    for pid in waiters {
                        p.wake_other(pid, release);
                    }
                    p.lift_other_clock(p.pid(), release);
                    if hb::on(p) {
                        hb::barrier_depart(p, self.id, my_gen);
                    }
                    release
                } else {
                    let pid = p.pid();
                    s.waiters.push(pid);
                    drop(s);
                    loop {
                        let t = p.block();
                        let s = self.state.lock();
                        if s.generation > my_gen {
                            let release = t.max(s.release_time);
                            drop(s);
                            if hb::on(p) {
                                hb::barrier_depart(p, self.id, my_gen);
                            }
                            return release;
                        }
                        // Spurious wake: re-register and keep waiting.
                        drop(s);
                        let mut s = self.state.lock();
                        if !s.waiters.contains(&pid) {
                            s.waiters.push(pid);
                        }
                    }
                }
            }
            ClockMode::Real => {
                let mut s = self.state.lock();
                let my_gen = s.generation;
                s.arrived += 1;
                if s.arrived == self.n {
                    s.generation += 1;
                    s.arrived = 0;
                    self.cv.notify_all();
                } else {
                    while s.generation == my_gen {
                        self.cv.wait(&mut s);
                    }
                }
                drop(s);
                p.now()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimGate
// ---------------------------------------------------------------------------

struct GateState {
    open_at: Option<SimTime>,
    waiters: Vec<Pid>,
}

/// A broadcast flag. Processes calling [`SimGate::wait_open`] block until
/// some process [`SimGate::open`]s the gate; once open, waiters pass
/// through immediately (their clocks raised to the opening time).
pub struct SimGate {
    state: Mutex<GateState>,
    cv: Condvar,
    /// Identity for happens-before recording (0 when `check` is off).
    id: u64,
}

impl Default for SimGate {
    fn default() -> Self {
        Self::new()
    }
}

impl SimGate {
    /// A closed gate.
    pub fn new() -> SimGate {
        SimGate {
            state: Mutex::new(GateState {
                open_at: None,
                waiters: Vec::new(),
            }),
            cv: Condvar::new(),
            id: hb::unique_id(),
        }
    }

    /// Is the gate open?
    pub fn is_open(&self) -> bool {
        self.state.lock().open_at.is_some()
    }

    /// Open the gate, releasing waiters `latency` after the opener's time.
    pub fn open(&self, p: &Proc, latency: SimTime) {
        let at = p.now() + latency;
        if hb::on(p) {
            hb::gate_open(p, self.id);
        }
        let mut s = self.state.lock();
        s.open_at = Some(match s.open_at {
            Some(prev) => prev.min(at),
            None => at,
        });
        match p.mode() {
            ClockMode::Virtual => {
                for pid in s.waiters.drain(..) {
                    p.wake_other(pid, at);
                }
            }
            ClockMode::Real => {
                self.cv.notify_all();
            }
        }
    }

    /// Close the gate again (for reusable breakpoints).
    pub fn reset(&self) {
        self.state.lock().open_at = None;
    }

    /// Block until the gate is open; returns the time at which the caller
    /// passed through.
    pub fn wait_open(&self, p: &Proc) -> SimTime {
        match p.mode() {
            ClockMode::Virtual => loop {
                let mut s = self.state.lock();
                if let Some(at) = s.open_at {
                    if at <= p.now() {
                        if hb::on(p) {
                            hb::gate_pass(p, self.id);
                        }
                        return p.now();
                    }
                    drop(s);
                    p.sleep_until(at);
                    if hb::on(p) {
                        hb::gate_pass(p, self.id);
                    }
                    return p.now();
                }
                let pid = p.pid();
                if !s.waiters.contains(&pid) {
                    s.waiters.push(pid);
                }
                drop(s);
                p.block();
                let mut s = self.state.lock();
                s.waiters.retain(|&w| w != pid);
            },
            ClockMode::Real => {
                let mut s = self.state.lock();
                while s.open_at.is_none() {
                    self.cv.wait(&mut s);
                }
                drop(s);
                p.now()
            }
        }
    }
}

// ---------------------------------------------------------------------------
// SimQueue: FIFO work queue (no latency), for OMP dynamic scheduling
// ---------------------------------------------------------------------------

/// A plain FIFO shared work queue with blocking pop, used by the OpenMP
/// runtime's dynamic loop scheduler. Unlike [`SimChannel`], entries have no
/// arrival latency; a `None` sentinel (closed queue) releases poppers.
pub struct SimQueue<T> {
    state: Mutex<(VecDeque<T>, bool, Vec<Pid>)>,
    cv: Condvar,
    /// Identity for happens-before recording (0 when `check` is off).
    id: u64,
}

impl<T> Default for SimQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> SimQueue<T> {
    /// An empty, open queue.
    pub fn new() -> SimQueue<T> {
        SimQueue {
            state: Mutex::new((VecDeque::new(), false, Vec::new())),
            cv: Condvar::new(),
            id: hb::unique_id(),
        }
    }

    /// Push one item.
    pub fn push(&self, p: &Proc, item: T) {
        if hb::on(p) {
            hb::queue_push(p, self.id);
        }
        let mut s = self.state.lock();
        s.0.push_back(item);
        self.notify(p, &mut s);
    }

    /// Close the queue: poppers drain remaining items, then observe `None`.
    pub fn close(&self, p: &Proc) {
        if hb::on(p) {
            hb::queue_push(p, self.id);
        }
        let mut s = self.state.lock();
        s.1 = true;
        self.notify(p, &mut s);
    }

    fn notify(&self, p: &Proc, s: &mut (VecDeque<T>, bool, Vec<Pid>)) {
        match p.mode() {
            ClockMode::Virtual => {
                let now = p.now();
                for pid in s.2.drain(..) {
                    p.wake_other(pid, now);
                }
            }
            ClockMode::Real => {
                self.cv.notify_all();
            }
        }
    }

    /// Pop one item, blocking while the queue is empty and open.
    /// Returns `None` once the queue is closed and drained.
    pub fn pop(&self, p: &Proc) -> Option<T> {
        match p.mode() {
            ClockMode::Virtual => loop {
                let mut s = self.state.lock();
                if let Some(item) = s.0.pop_front() {
                    if hb::on(p) {
                        hb::queue_pop(p, self.id);
                    }
                    return Some(item);
                }
                if s.1 {
                    return None;
                }
                let pid = p.pid();
                if !s.2.contains(&pid) {
                    s.2.push(pid);
                }
                drop(s);
                p.block();
                let mut s = self.state.lock();
                s.2.retain(|&w| w != pid);
            },
            ClockMode::Real => {
                let mut s = self.state.lock();
                loop {
                    if let Some(item) = s.0.pop_front() {
                        return Some(item);
                    }
                    if s.1 {
                        return None;
                    }
                    self.cv.wait(&mut s);
                }
            }
        }
    }

    /// Pop without blocking.
    pub fn try_pop(&self) -> Option<T> {
        self.state.lock().0.pop_front()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Sim;
    use crate::fault::{FaultPlan, FaultSpec};
    use crate::topology::Machine;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    fn vsim(seed: u64) -> Sim {
        Sim::virtual_time(Machine::test_machine(), seed)
    }

    /// A message whose `Clone` impl counts every invocation. Pins the
    /// `send_ctl` contract: the message is cloned only *after* the plan
    /// decides to duplicate it, never speculatively.
    struct Counted(Arc<AtomicUsize>);

    impl Clone for Counted {
        fn clone(&self) -> Counted {
            self.0.fetch_add(1, Ordering::Relaxed);
            Counted(Arc::clone(&self.0))
        }
    }

    #[test]
    fn send_ctl_never_clones_without_a_fault_plan() {
        let sim = vsim(3);
        let clones = Arc::new(AtomicUsize::new(0));
        let ch: Arc<SimChannel<Counted>> = Arc::new(SimChannel::new());
        let (tx, c) = (Arc::clone(&ch), Arc::clone(&clones));
        sim.spawn("solo", 0, move |p| {
            for _ in 0..100 {
                tx.send_ctl(p, Counted(Arc::clone(&c)), SimTime::ZERO);
            }
            assert_eq!(tx.len(), 100, "fault-free send_ctl delivers every send");
            while tx.try_recv(p).is_some() {}
        });
        sim.run();
        assert_eq!(
            clones.load(Ordering::Relaxed),
            0,
            "send_ctl with no fault plan must not clone the message"
        );
    }

    #[test]
    fn send_ctl_clones_exactly_once_per_duplicate() {
        // The `dup` profile duplicates ~10% of control messages and drops
        // none, so deliveries − sends counts the duplicates exactly; each
        // must have cost exactly one clone (and the non-duplicated sends
        // none).
        const SENDS: usize = 400;
        let sim = vsim(3);
        let spec = FaultSpec::parse("7:dup").expect("dup profile parses");
        assert!(sim.set_fault_plan(FaultPlan::new(&spec, sim.machine())));
        let clones = Arc::new(AtomicUsize::new(0));
        let delivered = Arc::new(AtomicUsize::new(0));
        let ch: Arc<SimChannel<Counted>> = Arc::new(SimChannel::new());
        let (tx, c, d) = (Arc::clone(&ch), Arc::clone(&clones), Arc::clone(&delivered));
        sim.spawn("solo", 0, move |p| {
            for _ in 0..SENDS {
                tx.send_ctl(p, Counted(Arc::clone(&c)), SimTime::ZERO);
            }
            let mut n = 0usize;
            while tx.try_recv(p).is_some() {
                n += 1;
            }
            d.store(n, Ordering::Relaxed);
        });
        sim.run();
        let dups = delivered.load(Ordering::Relaxed) - SENDS;
        assert!(
            dups > 0,
            "dup profile must duplicate something in {SENDS} sends"
        );
        assert_eq!(
            clones.load(Ordering::Relaxed),
            dups,
            "exactly one clone per duplicated delivery"
        );
    }

    #[test]
    fn channel_delivers_after_latency() {
        let sim = vsim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            p.advance(SimTime::from_micros(10));
            tx.send(p, 42, SimTime::from_micros(5));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            let v = rx.recv(p);
            assert_eq!(v, 42);
            assert_eq!(p.now(), SimTime::from_micros(15));
        });
        sim.run();
    }

    #[test]
    fn channel_receiver_already_past_arrival() {
        let sim = vsim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            tx.send(p, 7, SimTime::from_micros(1));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            p.advance(SimTime::from_millis(1)); // way past arrival
            let v = rx.recv(p);
            assert_eq!(v, 7);
            // Clock must NOT rewind.
            assert_eq!(p.now(), SimTime::from_millis(1));
        });
        sim.run();
    }

    #[test]
    fn channel_match_picks_earliest_matching() {
        let sim = vsim(1);
        let ch: Arc<SimChannel<(u32, &'static str)>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            tx.send(p, (1, "a"), SimTime::from_micros(30));
            tx.send(p, (2, "b"), SimTime::from_micros(10));
            tx.send(p, (3, "b"), SimTime::from_micros(20));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            let (id, tag) = rx.recv_match(p, |m| m.1 == "b");
            assert_eq!((id, tag), (2, "b"));
            let (id, _) = rx.recv_match(p, |m| m.1 == "b");
            assert_eq!(id, 3);
            let (id, _) = rx.recv(p);
            assert_eq!(id, 1);
        });
        sim.run();
    }

    #[test]
    fn try_recv_respects_arrival_time() {
        let sim = vsim(1);
        let ch: Arc<SimChannel<u8>> = Arc::new(SimChannel::new());
        let c = Arc::clone(&ch);
        sim.spawn("solo", 0, move |p| {
            c.send(p, 9, SimTime::from_micros(100));
            assert_eq!(c.try_recv(p), None); // still in flight
            p.advance(SimTime::from_micros(100));
            assert_eq!(c.try_recv(p), Some(9));
        });
        sim.run();
    }

    #[test]
    fn barrier_releases_at_max_plus_cost() {
        let sim = vsim(1);
        let bar = Arc::new(SimBarrier::new(3, SimTime::from_micros(7)));
        for i in 0..3u64 {
            let b = Arc::clone(&bar);
            sim.spawn(format!("p{i}"), 0, move |p| {
                p.advance(SimTime::from_micros(10 * (i + 1))); // arrive at 10/20/30
                let rel = b.wait(p);
                assert_eq!(rel, SimTime::from_micros(37));
                assert_eq!(p.now(), SimTime::from_micros(37));
            });
        }
        sim.run();
    }

    #[test]
    fn barrier_is_cyclic() {
        let sim = vsim(1);
        let bar = Arc::new(SimBarrier::new(2, SimTime::ZERO));
        for i in 0..2u64 {
            let b = Arc::clone(&bar);
            sim.spawn(format!("p{i}"), 0, move |p| {
                let mut last = SimTime::ZERO;
                for round in 0..5u64 {
                    p.advance(SimTime::from_micros(i + 1));
                    let rel = b.wait(p);
                    assert!(rel >= last, "round {round} went backwards");
                    last = rel;
                }
                // Slowest participant advances 2us per round.
                assert_eq!(last, SimTime::from_micros(10));
            });
        }
        sim.run();
    }

    #[test]
    fn gate_blocks_until_open() {
        let sim = vsim(1);
        let gate = Arc::new(SimGate::new());
        let g = Arc::clone(&gate);
        sim.spawn("opener", 0, move |p| {
            p.advance(SimTime::from_millis(3));
            g.open(p, SimTime::from_micros(500));
        });
        for i in 0..3 {
            let g = Arc::clone(&gate);
            sim.spawn(format!("w{i}"), 1, move |p| {
                let t = g.wait_open(p);
                assert_eq!(t, SimTime::from_micros(3500));
            });
        }
        sim.run();
    }

    #[test]
    fn gate_open_before_wait_passes_straight_through() {
        let sim = vsim(1);
        let gate = Arc::new(SimGate::new());
        let g = Arc::clone(&gate);
        sim.spawn("opener", 0, move |p| {
            g.open(p, SimTime::ZERO);
        });
        let g2 = Arc::clone(&gate);
        sim.spawn("late", 1, move |p| {
            p.advance(SimTime::from_secs(1));
            let t = g2.wait_open(p);
            assert_eq!(t, SimTime::from_secs(1)); // no waiting, no rewind
        });
        sim.run();
    }

    #[test]
    fn queue_drains_then_closes() {
        let sim = vsim(1);
        let q: Arc<SimQueue<u32>> = Arc::new(SimQueue::new());
        let qp = Arc::clone(&q);
        sim.spawn("producer", 0, move |p| {
            for i in 0..10 {
                qp.push(p, i);
                p.advance(SimTime::from_micros(1));
            }
            qp.close(p);
        });
        let sum = Arc::new(Mutex::new(0u32));
        for w in 0..3 {
            let qc = Arc::clone(&q);
            let sum = Arc::clone(&sum);
            sim.spawn(format!("worker{w}"), 1, move |p| {
                while let Some(v) = qc.pop(p) {
                    *sum.lock() += v;
                    p.advance(SimTime::from_micros(2));
                }
            });
        }
        sim.run();
        assert_eq!(*sum.lock(), 45);
    }

    #[test]
    fn deadline_recv_takes_message_sent_exactly_at_deadline() {
        // Regression: the receiver blocks first, arming its deadline
        // timer; the sender's wake-to-send is scheduled at the very same
        // virtual time as the deadline. The old scheduler tie-break
        // `(time, seq)` popped the (earlier-armed) timer before the send
        // could happen, so the receive timed out even though the message
        // arrives exactly at the deadline. Wake events must win the tie.
        let sim = vsim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 0, move |p| {
            let v = rx.recv_match_deadline(p, |_| true, SimTime::from_micros(50));
            assert_eq!(
                v,
                Some(7),
                "a message arriving exactly at the deadline must be received"
            );
            assert_eq!(p.now(), SimTime::from_micros(50));
        });
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 1, move |p| {
            p.sleep_until(SimTime::from_micros(50));
            tx.send(p, 7, SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn deadline_recv_takes_message_at_deadline_sender_spawned_first() {
        // Same tie, opposite spawn (and therefore heap-seq) order.
        let sim = vsim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            p.sleep_until(SimTime::from_micros(50));
            tx.send(p, 7, SimTime::ZERO);
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            let v = rx.recv_match_deadline(p, |_| true, SimTime::from_micros(50));
            assert_eq!(v, Some(7));
            assert_eq!(p.now(), SimTime::from_micros(50));
        });
        sim.run();
    }

    #[test]
    fn deadline_recv_still_times_out_when_message_is_late() {
        let sim = vsim(1);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 0, move |p| {
            let v = rx.recv_match_deadline(p, |_| true, SimTime::from_micros(50));
            assert_eq!(v, None, "a message after the deadline must not be taken");
            assert_eq!(p.now(), SimTime::from_micros(50));
        });
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 1, move |p| {
            p.sleep_until(SimTime::from_micros(51));
            tx.send(p, 7, SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn fifo_channel_never_reorders() {
        // Unordered channels may deliver a later-sent message earlier (the
        // jitter model); FIFO channels must not.
        let sim = vsim(5);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new_fifo());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            // Decreasing latencies: without FIFO, message 2 would arrive
            // before message 1.
            tx.send(p, 1, SimTime::from_micros(100));
            tx.send(p, 2, SimTime::from_micros(10));
            tx.send(p, 3, SimTime::from_micros(1));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            assert_eq!(rx.recv(p), 1);
            assert_eq!(rx.recv(p), 2);
            assert_eq!(rx.recv(p), 3);
            // All arrive no earlier than the first message's latency.
            assert!(p.now() >= SimTime::from_micros(100));
        });
        sim.run();
    }

    #[test]
    fn unordered_channel_may_reorder() {
        let sim = vsim(5);
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let tx = Arc::clone(&ch);
        sim.spawn("sender", 0, move |p| {
            tx.send(p, 1, SimTime::from_micros(100));
            tx.send(p, 2, SimTime::from_micros(1));
        });
        let rx = Arc::clone(&ch);
        sim.spawn("receiver", 1, move |p| {
            assert_eq!(rx.recv(p), 2, "earlier arrival wins");
            assert_eq!(rx.recv(p), 1);
        });
        sim.run();
    }

    #[test]
    fn primitives_work_in_real_mode() {
        let sim = Sim::real_time(Machine::test_machine());
        let ch: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
        let bar = Arc::new(SimBarrier::new(2, SimTime::ZERO));
        let gate = Arc::new(SimGate::new());
        let (c1, b1, g1) = (Arc::clone(&ch), Arc::clone(&bar), Arc::clone(&gate));
        sim.spawn("a", 0, move |p| {
            c1.send(p, 5, SimTime::from_secs(100)); // latency ignored in real mode
            b1.wait(p);
            g1.open(p, SimTime::ZERO);
        });
        let (c2, b2, g2) = (ch, bar, gate);
        sim.spawn("b", 1, move |p| {
            let v = c2.recv(p);
            assert_eq!(v, 5);
            b2.wait(p);
            g2.wait_open(p);
        });
        sim.run();
    }
}
