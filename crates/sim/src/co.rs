//! Stackful coroutine runtime backing the engine's `coroutine` process
//! backend (see [`crate::engine::ProcBackend`]).
//!
//! A simulated process becomes a *green task*: a private, guard-paged
//! stack plus a saved stack pointer. Suspending and resuming is one
//! direct `call` to [`switch`] — save six callee-saved registers and the
//! floating-point control words, swap `rsp`, restore, `ret` — roughly
//! the cost of a well-predicted function call, instead of the
//! `park`/`unpark` futex round trip (two syscalls plus a scheduler trip)
//! the `threads` backend pays per event.
//!
//! The runtime is deliberately tiny and engine-shaped rather than
//! general:
//!
//! * **No scheduler here.** The engine decides who runs; this module
//!   only knows how to build a resumable stack and jump between two of
//!   them.
//! * **Single driving thread.** Every coroutine of a simulation runs on
//!   the thread inside `Sim::run` (which is also what keeps the engine's
//!   dispatch order bit-for-bit identical to the `threads` backend).
//!   Nothing in this module is thread-safe and nothing needs to be.
//! * **No unwinding across the boundary.** The fabricated root frame has
//!   no unwind tables; the engine wraps every process body in
//!   `catch_unwind`, and a finished body *returns* a [`FinalSwitch`] to
//!   [`dynprof_sim_co_main`], which performs the last jump only after
//!   the closure environment has been dropped — so a completed coroutine
//!   leaks nothing.
//!
//! Stacks are `mmap`ed with a [`GUARD_BYTES`]-sized `PROT_NONE` guard at
//! the low end: an overflow faults loudly instead of corrupting a
//! neighbouring coroutine, and because pages are committed lazily a
//! 10k-rank simulation costs virtual address space, not resident memory.
//! The usable size defaults to [`DEFAULT_STACK_BYTES`] and can be raised
//! with `DYNPROF_CO_STACK_KB` for unusually deep process bodies.
//!
//! Only x86-64 Linux is implemented (the System V ABI switch in
//! `global_asm!`); [`supported`] is `false` elsewhere and the engine
//! falls back to the `threads` backend.

/// Is the coroutine backend available on this target?
pub(crate) fn supported() -> bool {
    cfg!(all(target_os = "linux", target_arch = "x86_64"))
}

/// A boot closure: runs the process body to completion (catching any
/// unwind) and *returns* the final context switch for
/// [`dynprof_sim_co_main`] to perform once the closure's environment has
/// been dropped. It must never unwind.
pub(crate) type BootFn = Box<dyn FnOnce() -> FinalSwitch>;

/// The last jump of a finished coroutine: save the (never again resumed)
/// context into `save`, resume `to`. Raw pointers only, so it can be
/// carried out after every owned value on the dying stack is gone.
#[derive(Clone, Copy)]
pub(crate) struct FinalSwitch {
    /// Where to store the dying coroutine's stack pointer.
    pub(crate) save: *mut *mut u8,
    /// Stack pointer of the context to resume.
    pub(crate) to: *mut u8,
}

#[cfg(all(target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::BootFn;
    use core::ffi::c_void;
    use std::sync::OnceLock;

    // Raw mmap/mprotect/munmap declarations (x86-64 Linux values): the
    // workspace vendors every dependency, so no libc crate is available.
    const PROT_NONE: i32 = 0;
    const PROT_READ: i32 = 1;
    const PROT_WRITE: i32 = 2;
    const MAP_PRIVATE: i32 = 0x02;
    const MAP_ANONYMOUS: i32 = 0x20;
    /// Don't reserve swap for the mapping: stacks are committed lazily,
    /// so thousands of mostly-idle coroutines stay cheap.
    const MAP_NORESERVE: i32 = 0x4000;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> i32;
        fn mprotect(addr: *mut c_void, len: usize, prot: i32) -> i32;
    }

    /// x86-64 page size (the kernel ABI constant for this target).
    const PAGE: usize = 4096;
    /// Guard region at the low end of every stack: four pages, so even a
    /// large spilled frame that skips the first page still faults.
    const GUARD_BYTES: usize = 4 * PAGE;
    /// Default usable stack per coroutine (virtual; committed lazily).
    const DEFAULT_STACK_BYTES: usize = 1024 * 1024;

    /// Usable stack size, read once from `DYNPROF_CO_STACK_KB`.
    pub(crate) fn stack_bytes() -> usize {
        static BYTES: OnceLock<usize> = OnceLock::new();
        *BYTES.get_or_init(|| {
            std::env::var("DYNPROF_CO_STACK_KB")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .map(|kb| (kb.max(16) * 1024).next_multiple_of(PAGE))
                .unwrap_or(DEFAULT_STACK_BYTES)
        })
    }

    // The context switch and the entry thunk.
    //
    // `dynprof_sim_co_switch(save: *mut *mut u8 (rdi), to: *mut u8 (rsi))`
    // pushes the System V callee-saved registers and the two FP control
    // words onto the current stack, publishes the resulting `rsp` through
    // `save`, adopts `to` as the new `rsp`, and restores in reverse. The
    // caller-saved half of the register file needs no save: from the
    // compiler's point of view this is an ordinary `extern "C"` call.
    //
    // A suspended context therefore always looks like (low → high):
    //
    //   sp → [mxcsr:u32][fcw:u16][pad:u16]   FP control words
    //        [r15][r14][r13][r12][rbx][rbp]  callee-saved registers
    //        [return address]                resume point
    //
    // `dynprof_sim_co_entry` is the fabricated *return address* of a
    // never-started coroutine: [`RawCo::new`] builds exactly the image
    // above with the boot pointer parked in the r12 slot, so the very
    // first resume flows through the same restore path as every later
    // one. The thunk moves the boot pointer into `rdi`, clears `rbp` to
    // terminate backtraces, and calls [`dynprof_sim_co_main`]; at the
    // `call` the stack sits at the 16-byte-aligned stack top, giving the
    // callee a standard ABI-aligned frame. `co_main` never returns (the
    // `ud2` documents that), so nothing below the entry frame is ever
    // popped.
    core::arch::global_asm!(
        ".text",
        ".globl dynprof_sim_co_switch",
        ".type dynprof_sim_co_switch,@function",
        "dynprof_sim_co_switch:",
        "push rbp",
        "push rbx",
        "push r12",
        "push r13",
        "push r14",
        "push r15",
        "sub rsp, 8",
        "stmxcsr dword ptr [rsp]",
        "fnstcw word ptr [rsp + 4]",
        "mov qword ptr [rdi], rsp",
        "mov rsp, rsi",
        "ldmxcsr dword ptr [rsp]",
        "fldcw word ptr [rsp + 4]",
        "add rsp, 8",
        "pop r15",
        "pop r14",
        "pop r13",
        "pop r12",
        "pop rbx",
        "pop rbp",
        "ret",
        ".size dynprof_sim_co_switch, . - dynprof_sim_co_switch",
        ".globl dynprof_sim_co_entry",
        ".type dynprof_sim_co_entry,@function",
        "dynprof_sim_co_entry:",
        "mov rdi, r12",
        "xor ebp, ebp",
        "call dynprof_sim_co_main",
        "ud2",
        ".size dynprof_sim_co_entry, . - dynprof_sim_co_entry",
    );

    extern "C" {
        fn dynprof_sim_co_switch(save: *mut *mut u8, to: *mut u8);
        fn dynprof_sim_co_entry();
    }

    /// Rust landing point of a freshly started coroutine. `raw` is the
    /// `Box<BootFn>` pointer that [`RawCo::new`] parked in the r12 slot.
    ///
    /// Runs the boot closure (which owns the process body and must catch
    /// every unwind), drops its environment, then performs the closure's
    /// returned [`FinalSwitch`] — at which point this stack owns nothing
    /// and is safe to unmap once execution has moved elsewhere. Reaching
    /// the end would mean a finished coroutine was resumed: abort.
    #[no_mangle]
    unsafe extern "C" fn dynprof_sim_co_main(raw: *mut c_void) -> ! {
        let fin = {
            let boot: BootFn = *Box::from_raw(raw as *mut BootFn);
            boot()
        };
        dynprof_sim_co_switch(fin.save, fin.to);
        std::process::abort()
    }

    /// Save the current context's stack pointer into `save` and resume
    /// the context whose stack pointer is `to`.
    ///
    /// # Safety
    ///
    /// `to` must be a stack pointer previously published by this function
    /// (or fabricated by [`RawCo::new`]) and not resumed since; `save`
    /// must stay valid until the saved context is resumed or discarded.
    /// No references to data that another context may mutably access may
    /// be live across the call.
    pub(crate) unsafe fn switch(save: *mut *mut u8, to: *mut u8) {
        dynprof_sim_co_switch(save, to);
    }

    /// A guard-paged `mmap`ed coroutine stack.
    struct CoStack {
        map: *mut u8,
        len: usize,
    }

    impl CoStack {
        fn new(usable: usize) -> CoStack {
            let len = usable + GUARD_BYTES;
            unsafe {
                let map = mmap(
                    core::ptr::null_mut(),
                    len,
                    PROT_READ | PROT_WRITE,
                    MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE,
                    -1,
                    0,
                );
                assert!(
                    !core::ptr::eq(map, usize::MAX as *mut c_void),
                    "coroutine stack mmap ({len} bytes) failed"
                );
                let rc = mprotect(map, GUARD_BYTES, PROT_NONE);
                assert_eq!(rc, 0, "coroutine stack guard mprotect failed");
                CoStack {
                    map: map as *mut u8,
                    len,
                }
            }
        }

        /// One past the highest usable byte; page- (hence 16-) aligned.
        fn top(&self) -> *mut u8 {
            unsafe { self.map.add(self.len) }
        }
    }

    impl Drop for CoStack {
        fn drop(&mut self) {
            unsafe {
                let rc = munmap(self.map as *mut c_void, self.len);
                debug_assert_eq!(rc, 0, "coroutine stack munmap failed");
            }
        }
    }

    /// A coroutine: its stack and, while suspended, the stack pointer
    /// that resumes it.
    pub(crate) struct RawCo {
        /// Resume point. Valid only while the coroutine is suspended;
        /// while it runs this holds the *previous* (stale) save.
        pub(crate) resume_sp: *mut u8,
        stack: CoStack,
    }

    /// Default MXCSR (all exceptions masked, round-to-nearest) and x87
    /// control word, in the layout [`switch`] restores: mxcsr in the low
    /// four bytes, fcw in the next two.
    const FP_DEFAULTS: u64 = 0x0000_037F_0000_1F80;

    impl RawCo {
        /// Build a never-started coroutine whose first resume runs the
        /// boot closure behind `boot_raw` (a `Box<BootFn>` raw pointer;
        /// ownership passes to the coroutine on first resume — until
        /// then the caller is responsible for freeing it).
        pub(crate) fn new(usable_stack: usize, boot_raw: *mut c_void) -> RawCo {
            let stack = CoStack::new(usable_stack);
            let top = stack.top();
            // Fabricate the suspended-context image described at the
            // `global_asm!` block (offsets from the stack top).
            unsafe {
                let slot = |off: usize| top.sub(off) as *mut u64;
                let entry: unsafe extern "C" fn() = dynprof_sim_co_entry;
                *slot(8) = entry as *const () as u64; // return address
                *slot(16) = 0; // rbp
                *slot(24) = 0; // rbx
                *slot(32) = boot_raw as u64; // r12: boot pointer
                *slot(40) = 0; // r13
                *slot(48) = 0; // r14
                *slot(56) = 0; // r15
                *slot(64) = FP_DEFAULTS;
                RawCo {
                    resume_sp: top.sub(64),
                    stack,
                }
            }
        }

        /// Bytes of usable stack (diagnostics).
        #[allow(dead_code)]
        pub(crate) fn usable_bytes(&self) -> usize {
            self.stack.len - GUARD_BYTES
        }
    }
}

#[cfg(not(all(target_os = "linux", target_arch = "x86_64")))]
mod imp {
    //! Stub for unsupported targets: [`super::supported`] is `false`, so
    //! the engine never constructs a coroutine here; every entry point
    //! is an unreachable placeholder that keeps the crate compiling.
    use core::ffi::c_void;

    pub(crate) fn stack_bytes() -> usize {
        unreachable!("coroutine backend unsupported on this target")
    }

    pub(crate) unsafe fn switch(_save: *mut *mut u8, _to: *mut u8) {
        unreachable!("coroutine backend unsupported on this target")
    }

    pub(crate) struct RawCo {
        pub(crate) resume_sp: *mut u8,
    }

    impl RawCo {
        pub(crate) fn new(_usable_stack: usize, _boot_raw: *mut c_void) -> RawCo {
            unreachable!("coroutine backend unsupported on this target")
        }
    }
}

pub(crate) use imp::{stack_bytes, switch, RawCo};

#[cfg(all(test, target_os = "linux", target_arch = "x86_64"))]
mod tests {
    use super::*;
    use core::ffi::c_void;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Shared slots the test coroutine and the test thread bounce
    /// through. Heap-allocated so raw pointers into it stay valid across
    /// switches; single-threaded by construction. The coroutine's own
    /// save slot lives here too, so the boot closure can be built before
    /// the coroutine it will run on exists.
    struct Slots {
        main_sp: *mut u8,
        co_sp: *mut u8,
        steps: usize,
    }

    #[test]
    fn coroutine_bounces_to_main_and_back() {
        let slots = Box::into_raw(Box::new(Slots {
            main_sp: core::ptr::null_mut(),
            co_sp: core::ptr::null_mut(),
            steps: 0,
        }));
        let boot: BootFn = Box::new(move || unsafe {
            (*slots).steps += 1;
            switch(&mut (*slots).co_sp, (*slots).main_sp); // yield back to main
            (*slots).steps += 1;
            FinalSwitch {
                save: &mut (*slots).co_sp,
                to: (*slots).main_sp,
            }
        });
        let boot_raw = Box::into_raw(Box::new(boot)) as *mut c_void;
        let co = RawCo::new(64 * 1024, boot_raw);
        unsafe {
            // First resume: runs the thunk, enters the boot closure.
            switch(&mut (*slots).main_sp, co.resume_sp);
            assert_eq!((*slots).steps, 1);
            // Second resume: closure finishes and jumps back for good.
            switch(&mut (*slots).main_sp, (*slots).co_sp);
            assert_eq!((*slots).steps, 2);
            drop(Box::from_raw(slots));
        }
        drop(co); // finished; unmapping its stack is safe now
    }

    #[test]
    fn unwind_is_contained_by_catch_unwind_on_the_coroutine_stack() {
        struct Hop {
            main_sp: *mut u8,
            co_sp: *mut u8,
            caught: Option<u32>,
        }
        let hop = Box::into_raw(Box::new(Hop {
            main_sp: core::ptr::null_mut(),
            co_sp: core::ptr::null_mut(),
            caught: None,
        }));
        let boot: BootFn = Box::new(move || unsafe {
            let res = catch_unwind(AssertUnwindSafe(|| {
                resume_unwind(Box::new(7u32));
            }));
            (*hop).caught = res.err().and_then(|p| p.downcast::<u32>().ok()).map(|b| *b);
            FinalSwitch {
                save: &mut (*hop).co_sp,
                to: (*hop).main_sp,
            }
        });
        let boot_raw = Box::into_raw(Box::new(boot)) as *mut c_void;
        let co = RawCo::new(64 * 1024, boot_raw);
        unsafe {
            switch(&mut (*hop).main_sp, co.resume_sp);
            assert_eq!((*hop).caught, Some(7));
            drop(Box::from_raw(hop));
        }
        drop(co);
    }
}
