//! Deterministic random number generation.
//!
//! All randomness in the simulator (daemon jitter, workload perturbation)
//! flows through [`SimRng`], a ChaCha8 generator seeded from a global seed
//! plus a stream identifier. Two runs with the same seed therefore produce
//! identical event sequences, which the property tests rely on.

use rand::{Rng, RngCore, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A deterministic per-stream random generator.
pub struct SimRng {
    inner: ChaCha8Rng,
}

impl SimRng {
    /// Create the RNG for stream `stream` of global seed `seed`.
    ///
    /// Streams are decorrelated with SplitMix64-style mixing so that
    /// consecutive pids do not produce correlated sequences.
    pub fn new(seed: u64, stream: u64) -> SimRng {
        let mixed = splitmix64(seed ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SimRng {
            inner: ChaCha8Rng::seed_from_u64(mixed),
        }
    }

    /// RNG for a simulated process.
    pub fn for_process(seed: u64, pid: usize) -> SimRng {
        SimRng::new(seed, pid as u64)
    }

    /// Uniform `u64` in the given range.
    pub fn gen_range_u64(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        self.inner.gen_range(range)
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        self.inner.gen_range(0..n)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = SimRng::new(7, 3);
        let mut b = SimRng::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::new(7, 3);
        let mut b = SimRng::new(7, 4);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SimRng::new(1, 1);
        for _ in 0..1000 {
            let v = r.gen_range_u64(10..=20);
            assert!((10..=20).contains(&v));
            let i = r.gen_index(5);
            assert!(i < 5);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_range_panics() {
        SimRng::new(1, 1).gen_index(0);
    }
}
