//! Deterministic random number generation.
//!
//! All randomness in the simulator (daemon jitter, workload perturbation)
//! flows through [`SimRng`], a ChaCha8 generator seeded from a global seed
//! plus a stream identifier. Two runs with the same seed therefore produce
//! identical event sequences, which the property tests rely on.
//!
//! The ChaCha8 core is implemented locally (the build environment cannot
//! fetch the `rand_chacha` crate): the standard ChaCha quarter-round over
//! a 16-word state, 8 rounds, 64-byte blocks consumed as sixteen
//! little-endian words.

/// A deterministic per-stream random generator.
pub struct SimRng {
    inner: ChaCha8,
}

impl SimRng {
    /// Create the RNG for stream `stream` of global seed `seed`.
    ///
    /// Streams are decorrelated with SplitMix64-style mixing so that
    /// consecutive pids do not produce correlated sequences.
    pub fn new(seed: u64, stream: u64) -> SimRng {
        let mixed = splitmix64(seed ^ splitmix64(stream.wrapping_add(0x9E37_79B9_7F4A_7C15)));
        SimRng {
            inner: ChaCha8::seed_from_u64(mixed),
        }
    }

    /// RNG for a simulated process.
    pub fn for_process(seed: u64, pid: usize) -> SimRng {
        SimRng::new(seed, pid as u64)
    }

    /// Uniform `u64` in the given range.
    pub fn gen_range_u64(&mut self, range: std::ops::RangeInclusive<u64>) -> u64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "gen_range_u64 on empty range");
        let span = hi.wrapping_sub(lo).wrapping_add(1);
        if span == 0 {
            // Full u64 range.
            return self.next_u64();
        }
        // Lemire's multiply-shift map with a rejection pass for exact
        // uniformity (the zone below `threshold` would be over-weighted).
        let threshold = span.wrapping_neg() % span;
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (span as u128);
            if (m as u64) >= threshold {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Uniform `usize` in `[0, n)`. Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        assert!(n > 0, "gen_index on empty range");
        self.gen_range_u64(0..=(n as u64 - 1)) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn gen_f64(&mut self) -> f64 {
        // 53 uniform mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Raw 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The ChaCha stream cipher with 8 rounds, used purely as a PRNG.
struct ChaCha8 {
    /// Constant ‖ key ‖ counter ‖ nonce input words.
    state: [u32; 16],
    /// The current 64-byte output block as sixteen words.
    block: [u32; 16],
    /// Next unread word of `block`; 16 forces a refill.
    cursor: usize,
}

impl ChaCha8 {
    /// Key the generator from a 64-bit seed: the 256-bit key is the seed
    /// expanded through SplitMix64 (counter and nonce start at zero).
    fn seed_from_u64(seed: u64) -> ChaCha8 {
        let mut key = [0u32; 8];
        let mut s = seed;
        for pair in key.chunks_mut(2) {
            s = splitmix64(s);
            pair[0] = s as u32;
            pair[1] = (s >> 32) as u32;
        }
        let mut state = [0u32; 16];
        // "expand 32-byte k"
        state[0] = 0x6170_7865;
        state[1] = 0x3320_646E;
        state[2] = 0x7962_2D32;
        state[3] = 0x6B20_6574;
        state[4..12].copy_from_slice(&key);
        ChaCha8 {
            state,
            block: [0; 16],
            cursor: 16,
        }
    }

    fn refill(&mut self) {
        let mut x = self.state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut x, 0, 4, 8, 12);
            quarter(&mut x, 1, 5, 9, 13);
            quarter(&mut x, 2, 6, 10, 14);
            quarter(&mut x, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut x, 0, 5, 10, 15);
            quarter(&mut x, 1, 6, 11, 12);
            quarter(&mut x, 2, 7, 8, 13);
            quarter(&mut x, 3, 4, 9, 14);
        }
        for (o, s) in x.iter_mut().zip(self.state.iter()) {
            *o = o.wrapping_add(*s);
        }
        self.block = x;
        self.cursor = 0;
        // 64-bit block counter in words 12..14.
        let c = (self.state[12] as u64 | ((self.state[13] as u64) << 32)).wrapping_add(1);
        self.state[12] = c as u32;
        self.state[13] = (c >> 32) as u32;
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor == 16 {
            self.refill();
        }
        let w = self.block[self.cursor];
        self.cursor += 1;
        w
    }

    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        lo | (hi << 32)
    }
}

#[inline]
fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(16);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(12);
    x[a] = x[a].wrapping_add(x[b]);
    x[d] = (x[d] ^ x[a]).rotate_left(8);
    x[c] = x[c].wrapping_add(x[d]);
    x[b] = (x[b] ^ x[c]).rotate_left(7);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream_reproduces() {
        let mut a = SimRng::new(7, 3);
        let mut b = SimRng::new(7, 3);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_streams_differ() {
        let mut a = SimRng::new(7, 3);
        let mut b = SimRng::new(7, 4);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn ranges_are_respected() {
        let mut r = SimRng::new(1, 1);
        for _ in 0..1000 {
            let v = r.gen_range_u64(10..=20);
            assert!((10..=20).contains(&v));
            let i = r.gen_index(5);
            assert!(i < 5);
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_index_range_panics() {
        SimRng::new(1, 1).gen_index(0);
    }

    #[test]
    fn chacha_core_matches_rfc8439_structure() {
        // The RFC 7539/8439 test vector is for 20 rounds; with 8 rounds we
        // can still pin the quarter-round primitive from the RFC's §2.1.1
        // example.
        let mut x = [0u32; 16];
        x[0] = 0x1111_1111;
        x[1] = 0x0102_0304;
        x[2] = 0x9b8d_6f43;
        x[3] = 0x0123_4567;
        quarter(&mut x, 0, 1, 2, 3);
        assert_eq!(x[0], 0xea2a_92f4);
        assert_eq!(x[1], 0xcb1c_f8ce);
        assert_eq!(x[2], 0x4581_472e);
        assert_eq!(x[3], 0x5881_c4bb);
    }

    #[test]
    fn output_is_not_degenerate() {
        // Cheap sanity: bits are roughly balanced over a small sample.
        let mut r = SimRng::new(42, 0);
        let ones: u32 = (0..256).map(|_| r.next_u64().count_ones()).sum();
        let total = 256 * 64;
        assert!((ones as f64 / total as f64 - 0.5).abs() < 0.05);
    }
}
