//! Simulated time.
//!
//! [`SimTime`] is a nanosecond-resolution instant/duration on the virtual
//! clock. It is a plain `u64` wrapper so it is `Copy`, totally ordered, and
//! cheap to store in event queues. The same type doubles as a duration;
//! the paper's measurements span ~1 µs (probe costs) to ~500 s (application
//! runs), all of which fit comfortably in 64-bit nanoseconds (~584 years).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) simulated time, in nanoseconds.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The zero instant (simulation epoch).
    pub const ZERO: SimTime = SimTime(0);
    /// The maximum representable instant.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }
    /// Construct from microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }
    /// Construct from milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }
    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }
    /// Construct from fractional seconds (saturating at zero for negatives).
    #[inline]
    pub fn from_secs_f64(s: f64) -> Self {
        SimTime((s.max(0.0) * 1e9).round() as u64)
    }

    /// Nanoseconds since the epoch.
    #[inline]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }
    /// Microseconds since the epoch (truncating).
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }
    /// Milliseconds since the epoch (truncating).
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }
    /// Fractional seconds since the epoch.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The larger of two instants.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two instants.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }

    /// Scale a duration by a floating-point factor (rounds to nearest ns).
    #[inline]
    pub fn mul_f64(self, k: f64) -> SimTime {
        SimTime((self.0 as f64 * k).round() as u64)
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn mul(self, k: u64) -> SimTime {
        SimTime(self.0 * k)
    }
}

impl Div<u64> for SimTime {
    type Output = SimTime;
    #[inline]
    fn div(self, k: u64) -> SimTime {
        SimTime(self.0 / k)
    }
}

impl Sum for SimTime {
    fn sum<I: Iterator<Item = SimTime>>(iter: I) -> SimTime {
        iter.fold(SimTime::ZERO, Add::add)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimTime({self})")
    }
}

impl fmt::Display for SimTime {
    /// Human-readable rendering with an adaptive unit.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns >= 1_000_000_000 {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        } else if ns >= 1_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else if ns >= 1_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else {
            write!(f, "{ns}ns")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_round_trip() {
        assert_eq!(SimTime::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_nanos(), 7_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_millis(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_micros(10);
        let b = SimTime::from_micros(4);
        assert_eq!((a + b).as_micros(), 14);
        assert_eq!((a - b).as_micros(), 6);
        assert_eq!((a * 3).as_micros(), 30);
        assert_eq!((a / 2).as_micros(), 5);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn mul_f64_rounds() {
        assert_eq!(SimTime::from_nanos(10).mul_f64(1.26).as_nanos(), 13);
        assert_eq!(SimTime::from_nanos(10).mul_f64(0.0).as_nanos(), 0);
    }

    #[test]
    fn display_units() {
        assert_eq!(SimTime::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimTime::from_micros(12).to_string(), "12.000us");
        assert_eq!(SimTime::from_millis(12).to_string(), "12.000ms");
        assert_eq!(SimTime::from_secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_and_secs_f64() {
        let total: SimTime = [1u64, 2, 3].iter().map(|&s| SimTime::from_secs(s)).sum();
        assert_eq!(total, SimTime::from_secs(6));
        assert!((SimTime::from_millis(250).as_secs_f64() - 0.25).abs() < 1e-12);
    }
}
