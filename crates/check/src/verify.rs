//! Snippet-program verification facade.
//!
//! The abstract interpreter itself lives in `dynprof_image::ir` (the DPCL
//! daemons must be able to call it, and `dpcl` cannot depend on this
//! crate). This module converts its [`VerifyReport`]s into the same
//! [`Finding`] currency the analyzer and happens-before layers speak, so
//! `dynlint` can surface snippet-IR rejections alongside every other
//! detector, and runs the verifier over the standard VT snippet set.

use dynprof_image::{SnippetProgram, VerifyError, VerifyReport};
use dynprof_sim::hb::{Finding, Severity};
use dynprof_sim::ProbeCosts;
use dynprof_vt::{
    configuration_break_snippet, vt_begin_snippet, vt_count_snippet, vt_end_snippet, VtConfig,
    VtFuncId, VtLib,
};

/// Stable detector name for each [`VerifyError`] variant.
fn detector_for(err: &VerifyError) -> &'static str {
    match err {
        VerifyError::OobWrite { .. } => "verify:oob-write",
        VerifyError::OobRead { .. } => "verify:oob-read",
        VerifyError::UnbalancedTimer { .. } => "verify:unbalanced-timer",
        VerifyError::EmitAfterStop => "verify:emit-after-stop",
        VerifyError::UnboundedLoop { .. } => "verify:unbounded-loop",
        VerifyError::RecursiveIntrinsic { .. } => "verify:recursive-intrinsic",
        VerifyError::UnknownIntrinsic { .. } => "verify:unknown-intrinsic",
    }
}

/// Convert one program's [`VerifyReport`] into findings (empty when the
/// program verified). `name` labels the program in messages.
pub fn report_findings(name: &str, report: &VerifyReport) -> Vec<Finding> {
    report
        .errors
        .iter()
        .map(|e| Finding {
            severity: Severity::Error,
            detector: detector_for(e),
            message: format!("snippet program {name:?}: {e}"),
        })
        .collect()
}

/// Run the abstract interpreter over `program` and report findings.
pub fn verify_program(program: &SnippetProgram) -> Vec<Finding> {
    report_findings(&program.name, &program.verify())
}

/// Verify the standard VT snippet set (`VT_begin`, `VT_end`, the counter
/// snippet, and the configuration-break marker) under `costs`.
///
/// Every snippet the runtime installs must carry a verified IR program;
/// a standard snippet with no program attached is itself an error — it
/// would reach the daemons unverifiable.
pub fn verify_standard_snippets(costs: ProbeCosts) -> Vec<Finding> {
    let vt = VtLib::new("dynlint-verify", 1, VtConfig::default(), costs);
    let snippets = [
        ("VT_begin", vt_begin_snippet(vt.clone(), VtFuncId(0))),
        ("VT_end", vt_end_snippet(vt.clone(), VtFuncId(0))),
        ("VT_count", vt_count_snippet().0),
        ("configuration_break", configuration_break_snippet()),
    ];
    let mut out = Vec::new();
    for (name, snippet) in &snippets {
        match &snippet.program {
            None => out.push(Finding {
                severity: Severity::Error,
                detector: "verify:unverified-snippet",
                message: format!(
                    "standard snippet {name:?} carries no IR program — daemons cannot verify it"
                ),
            }),
            Some(program) => out.extend(verify_program(program)),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_image::{Expr, IntrinsicTable, Stmt};

    #[test]
    fn standard_snippet_set_verifies_clean() {
        assert!(verify_standard_snippets(ProbeCosts::power3()).is_empty());
        assert!(verify_standard_snippets(ProbeCosts::pentium3()).is_empty());
    }

    #[test]
    fn broken_program_maps_to_stable_detectors() {
        let prog = SnippetProgram::new(
            "bad",
            1,
            vec![
                Stmt::StopTimer,
                Stmt::Store {
                    slot: Expr::Const(9),
                    value: Expr::Const(1),
                },
            ],
            IntrinsicTable::empty(),
        );
        let findings = verify_program(&prog);
        assert!(findings
            .iter()
            .all(|f| f.severity == Severity::Error && f.message.contains("\"bad\"")));
        let detectors: Vec<&str> = findings.iter().map(|f| f.detector).collect();
        assert!(detectors.contains(&"verify:unbalanced-timer"));
        assert!(detectors.contains(&"verify:oob-write"));
    }
}
