//! # dynprof-check — correctness analysis for the dynprof workspace
//!
//! Four layers of defence around the instrumentation machinery the paper
//! (Thiffault et al., IPDPS 2003) describes:
//!
//! * **Happens-before checking** (`dynprof_sim::hb`, re-exported as
//!   [`hb`]): vector clocks threaded through every simulator
//!   synchronization primitive detect collective mismatches, unmatched
//!   sends, barrier-participation divergence, and confsync epochs applied
//!   out of order (paper §5's safe-point invariant). Recording is gated
//!   behind the `check` cargo feature and compiles away entirely when off.
//! * **Probe-safety static analysis** ([`analyzer`]): a pass over a
//!   program's function manifest *before* any instrumentation is
//!   installed, flagging probe points that cannot legally hold a patch,
//!   double instrumentation, duplicate symbols, and snippet chains that
//!   blow a cost budget.
//! * **Snippet-program verification** ([`verify`]): a finding-typed
//!   facade over the abstract interpreter in `dynprof_image::ir`,
//!   rejecting instrumentation programs with unbounded loops,
//!   out-of-region accesses, or unbalanced timers before they reach a
//!   daemon.
//! * **Determinism source lint** ([`lint`]): a token-level scan of the
//!   workspace sources for constructs that would break the simulator's
//!   bit-for-bit reproducibility (wall clocks, unordered hash iteration
//!   feeding output, ambient randomness).
//!
//! All three surface through the `dynlint` binary, which exits nonzero
//! when any detector reports an error.

#![warn(missing_docs)]

pub mod analyzer;
pub mod lint;
pub mod verify;

/// The happens-before layer (lives in `dynprof-sim` so the primitives can
/// record into it); re-exported here as the natural home of its report
/// types.
pub use dynprof_sim::hb;
