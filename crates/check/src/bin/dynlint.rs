//! `dynlint` — the workspace's correctness gate.
//!
//! With no arguments it runs four passes over the real tree and exits
//! nonzero if any produces an error-severity finding:
//!
//! 1. the determinism source lint (plus the lock-discipline scan) over
//!    the simulation crates;
//! 2. the probe-safety analyzer over the four ASCI benchmark images
//!    (each app's `Dynamic`-policy subset as the probe plan);
//! 3. the snippet-program verifier over the standard VT snippet set
//!    (`VT_begin`, `VT_end`, counter, configuration break) under both
//!    machine cost models;
//! 4. a happens-before smoke run: a small MPI job under the `check`
//!    feature whose report must contain no errors.
//!
//! `--fixture <name>` instead runs a seeded negative — an input
//! deliberately constructed to trip one detector class — and therefore
//! exits nonzero. Fixtures: `collective-mismatch`, `epoch-unsafe`,
//! `unsafe-probe`, `banned-source`, `unbalanced-timer`,
//! `unbounded-loop`, `oob-write`, `branch-into-patch`.

use std::path::Path;
use std::process::ExitCode;

use dynprof_check::analyzer::{analyze, Budget, ProbePlan};
use dynprof_check::hb::{self, Finding, Severity};
use dynprof_check::{lint, verify};
use dynprof_image::{BasicBlock, Expr, FunctionInfo, IntrinsicTable, SnippetProgram, Stmt};
use dynprof_mpi::{launch, JobSpec};
use dynprof_sim::ProbeCosts;
use dynprof_sim::{Machine, Sim, SimTime};

/// Crates whose sources must stay deterministic.
const LINT_DIRS: &[&str] = &[
    "crates/sim",
    "crates/mpi",
    "crates/omp",
    "crates/vt",
    "crates/dpcl",
    "crates/image",
    "crates/apps",
    "crates/bench",
];

fn repo_root() -> &'static Path {
    Path::new(concat!(env!("CARGO_MANIFEST_DIR"), "/../.."))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let findings = match args.first().map(String::as_str) {
        None => real_tree(),
        Some("--fixture") => match args.get(1).map(String::as_str) {
            Some("collective-mismatch") => fixture_collective_mismatch(),
            Some("epoch-unsafe") => fixture_epoch_unsafe(),
            Some("unsafe-probe") => fixture_unsafe_probe(),
            Some("banned-source") => fixture_banned_source(),
            Some("unbalanced-timer") => fixture_unbalanced_timer(),
            Some("unbounded-loop") => fixture_unbounded_loop(),
            Some("oob-write") => fixture_oob_write(),
            Some("branch-into-patch") => fixture_branch_into_patch(),
            other => {
                eprintln!("dynlint: unknown fixture {other:?}");
                return ExitCode::from(2);
            }
        },
        Some(other) => {
            eprintln!("dynlint: unknown argument {other:?} (try `--fixture <name>`)");
            return ExitCode::from(2);
        }
    };
    let mut errors = 0usize;
    let mut warnings = 0usize;
    for f in &findings {
        println!("{f}");
        match f.severity {
            Severity::Error => errors += 1,
            Severity::Warning => warnings += 1,
        }
    }
    println!("dynlint: {errors} error(s), {warnings} warning(s)");
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

// -- the real tree ----------------------------------------------------------

fn real_tree() -> Vec<Finding> {
    let root = repo_root();
    let allow_text =
        std::fs::read_to_string(root.join("crates/check/dynlint.allow")).unwrap_or_default();
    let allow = lint::parse_allowlist(&allow_text);
    let mut findings = lint::lint_tree(root, LINT_DIRS, &allow);

    // Probe-safety: each benchmark's dynamic-policy plan against its
    // manifest.
    let apps: [(&str, Vec<FunctionInfo>, Vec<String>); 4] = [
        (
            "smg98",
            dynprof_apps::smg98_manifest(),
            dynprof_apps::smg98_subset(),
        ),
        (
            "sppm",
            dynprof_apps::sppm_manifest(),
            dynprof_apps::sppm_subset(),
        ),
        (
            "sweep3d",
            dynprof_apps::sweep3d_manifest(),
            dynprof_apps::sweep3d_subset(),
        ),
        (
            "umt98",
            dynprof_apps::umt98_manifest(),
            dynprof_apps::umt98_subset(),
        ),
    ];
    for (name, manifest, subset) in apps {
        findings.extend(analyze(
            name,
            &manifest,
            &ProbePlan::timer_pair(subset),
            &Budget::default(),
        ));
    }

    // Snippet-program verification: the standard VT snippet set must
    // verify clean under both machine cost models; a regression here
    // means the daemons would reject every install.
    findings.extend(verify::verify_standard_snippets(ProbeCosts::power3()));
    findings.extend(verify::verify_standard_snippets(ProbeCosts::pentium3()));

    findings.extend(smoke_run());
    findings
}

/// A 4-rank job doing matched collectives and point-to-point traffic; its
/// happens-before report must be error-free.
fn smoke_run() -> Vec<Finding> {
    if !hb::compiled() {
        return Vec::new();
    }
    let sim = Sim::virtual_time(Machine::test_machine(), 7);
    sim.enable_check();
    let handle = sim.check_handle();
    launch(&sim, JobSpec::new("smoke", 4), vec![], |p, c| {
        c.init(p);
        c.barrier(p);
        let total = c.allreduce(p, c.rank() as u64, |a, b| a + b);
        assert_eq!(total, 6);
        let _ = c.bcast(p, 0, (c.rank() == 0).then_some(total));
        c.barrier(p);
        c.finalize(p);
    });
    sim.run();
    handle.report().findings
}

// -- seeded negatives -------------------------------------------------------

/// Two ranks enter the same collective slot with different roots: the
/// collective-mismatch detector must flag it.
fn fixture_collective_mismatch() -> Vec<Finding> {
    if !hb::compiled() {
        eprintln!("dynlint: built without the `check` feature; fixture unavailable");
        return vec![synthetic_error()];
    }
    let sim = Sim::virtual_time(Machine::test_machine(), 3);
    sim.enable_check();
    let handle = sim.check_handle();
    launch(&sim, JobSpec::new("bad", 2), vec![], |p, c| {
        c.init(p);
        // Every rank believes *it* is the broadcast root — the classic
        // mismatched-collective bug. Both act as root (send and return),
        // so the run terminates; the checker sees one collective slot
        // with two different roots.
        let me = c.rank();
        let _ = c.bcast(p, me, Some(me as u64));
        c.finalize(p);
    });
    sim.run();
    handle.report().findings
}

/// A configuration epoch applied on a process with no causal path from
/// the decision: the paper §5 safe-point invariant is violated.
fn fixture_epoch_unsafe() -> Vec<Finding> {
    if !hb::compiled() {
        eprintln!("dynlint: built without the `check` feature; fixture unavailable");
        return vec![synthetic_error()];
    }
    let sim = Sim::virtual_time(Machine::test_machine(), 5);
    sim.enable_check();
    let handle = sim.check_handle();
    let lib = hb::unique_id();
    sim.spawn("decider", 0, move |p| {
        p.advance(SimTime::from_micros(1));
        hb::epoch_decision(p, lib, 0);
    });
    sim.spawn("applier", 1, move |p| {
        // Applies the epoch without ever having communicated with the
        // decider: nothing orders the apply after the decision.
        p.advance(SimTime::from_micros(2));
        hb::epoch_apply(p, lib, 0);
    });
    sim.run();
    handle.report().findings
}

/// A probe plan targeting a function too small to hold the patch.
fn fixture_unsafe_probe() -> Vec<Finding> {
    let manifest = vec![
        FunctionInfo::new("main").with_size(2048),
        FunctionInfo::new("leaf_stub").with_size(8),
    ];
    let plan = ProbePlan::timer_pair(vec!["leaf_stub".into()]);
    analyze("fixture", &manifest, &plan, &Budget::default())
}

/// A source file using a banned wall clock.
fn fixture_banned_source() -> Vec<Finding> {
    let path = repo_root().join("crates/check/fixtures/bad_instant.rs");
    let src = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("fixture {} unreadable: {e}", path.display()));
    lint::lint_source("crates/check/fixtures/bad_instant.rs", &src, &[])
}

/// A snippet program that stops a timer it never started: every path
/// must keep the start/stop stack balanced.
fn fixture_unbalanced_timer() -> Vec<Finding> {
    let prog = SnippetProgram::new(
        "fixture_unbalanced_timer",
        0,
        vec![Stmt::StartTimer, Stmt::StopTimer, Stmt::StopTimer],
        IntrinsicTable::empty(),
    );
    verify::verify_program(&prog)
}

/// A loop whose trip count comes from a runtime slot: no static bound,
/// so no worst-case cost can be derived.
fn fixture_unbounded_loop() -> Vec<Finding> {
    let prog = SnippetProgram::new(
        "fixture_unbounded_loop",
        1,
        vec![Stmt::Loop {
            trips: Expr::load(0),
            body: vec![Stmt::Emit {
                tag: 1,
                value: Expr::Const(0),
            }],
        }],
        IntrinsicTable::empty(),
    );
    verify::verify_program(&prog)
}

/// A store whose slot expression can land outside the declared data
/// region.
fn fixture_oob_write() -> Vec<Finding> {
    let prog = SnippetProgram::new(
        "fixture_oob_write",
        2,
        vec![Stmt::Store {
            slot: Expr::Const(7),
            value: Expr::Const(1),
        }],
        IntrinsicTable::empty(),
    );
    verify::verify_program(&prog)
}

/// A probe plan targeting a function whose CFG branches back into the
/// bytes an entry patch would overwrite.
fn fixture_branch_into_patch() -> Vec<Finding> {
    let manifest = vec![
        FunctionInfo::new("main").with_size(2048),
        FunctionInfo::new("hot_loop")
            .with_size(512)
            .with_blocks(vec![
                BasicBlock::new(0, vec![64]),
                BasicBlock::new(64, vec![4, 128]),
            ]),
    ];
    let plan = ProbePlan::timer_pair(vec!["hot_loop".into()]);
    analyze("fixture", &manifest, &plan, &Budget::default())
}

fn synthetic_error() -> Finding {
    Finding {
        severity: Severity::Error,
        detector: "fixture-unavailable",
        message: "happens-before fixtures need `--features check`".into(),
    }
}
