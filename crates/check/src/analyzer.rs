//! Probe-safety static analysis.
//!
//! DPCL/Dyninst-style patching rewrites the instruction at a probe point
//! with a jump; a function whose body is smaller than that jump cannot be
//! patched without corrupting the following symbol, and a snippet chain
//! that grows without bound turns the probe itself into the hot path. This
//! pass inspects a program's function manifest together with the
//! instrumenter's *plan* — which symbols it intends to patch and what it
//! intends to hang off each probe point — and reports everything that
//! would go wrong **before** a single byte is written.

use std::collections::BTreeMap;

use dynprof_image::{
    FunctionInfo, BASE_TRAMPOLINE_BYTES, MINI_TRAMPOLINE_BYTES, MIN_PATCHABLE_BYTES,
};
use dynprof_sim::hb::{Finding, Severity};
use dynprof_sim::SimTime;

/// What the instrumenter intends to install: the symbols it will patch
/// (entry *and* exit point of each) and the snippet chain per point.
#[derive(Clone, Debug)]
pub struct ProbePlan {
    /// Symbols to be dynamically instrumented.
    pub targets: Vec<String>,
    /// Mini-trampolines chained at each probe point.
    pub snippets_per_point: usize,
    /// Modelled execution cost of one snippet.
    pub snippet_cost: SimTime,
}

impl ProbePlan {
    /// The usual entry/exit timer pair: one snippet per point at the
    /// Power3 `VT_begin`/`VT_end` order of magnitude.
    pub fn timer_pair(targets: Vec<String>) -> ProbePlan {
        ProbePlan {
            targets,
            snippets_per_point: 1,
            snippet_cost: SimTime::from_nanos(800),
        }
    }

    /// Total snippet cost of one traversal of a probe point.
    pub fn chain_cost(&self) -> SimTime {
        self.snippet_cost * self.snippets_per_point as u64
    }
}

/// Limits the analyzer enforces.
#[derive(Clone, Debug)]
pub struct Budget {
    /// Maximum snippet-chain cost per probe-point traversal. Beyond this
    /// the probe dominates the function it observes.
    pub max_chain_cost: SimTime,
    /// Maximum dynamically allocated trampoline bytes across the image.
    pub max_trampoline_bytes: usize,
}

impl Default for Budget {
    fn default() -> Budget {
        Budget {
            max_chain_cost: SimTime::from_micros(10),
            max_trampoline_bytes: 1 << 20,
        }
    }
}

fn finding(severity: Severity, detector: &'static str, message: String) -> Finding {
    Finding {
        severity,
        detector,
        message,
    }
}

/// Analyze `plan` against the function manifest of `program`.
///
/// Returns structured findings, errors first. An empty vector means the
/// plan is safe to install.
pub fn analyze(
    program: &str,
    manifest: &[FunctionInfo],
    plan: &ProbePlan,
    budget: &Budget,
) -> Vec<Finding> {
    let mut out = Vec::new();

    // Duplicate symbol names: the instrumenter addresses probe points by
    // symbol, so a duplicate makes the patch target ambiguous (and
    // `ImageBuilder::build` would panic at attach time).
    let mut seen: BTreeMap<&str, usize> = BTreeMap::new();
    for f in manifest {
        *seen.entry(f.name.as_str()).or_insert(0) += 1;
    }
    for (name, n) in &seen {
        if *n > 1 {
            out.push(finding(
                Severity::Error,
                "analyzer:duplicate-symbol",
                format!("{program}: symbol {name:?} appears {n} times in the image"),
            ));
        }
    }

    let by_name: BTreeMap<&str, &FunctionInfo> =
        manifest.iter().map(|f| (f.name.as_str(), f)).collect();

    for target in &plan.targets {
        let Some(f) = by_name.get(target.as_str()) else {
            out.push(finding(
                Severity::Error,
                "analyzer:unknown-target",
                format!("{program}: plan targets {target:?}, not present in the image"),
            ));
            continue;
        };
        // Too small to hold the probe-point jump: installing would
        // overwrite the following symbol.
        if f.size_bytes < MIN_PATCHABLE_BYTES {
            out.push(finding(
                Severity::Error,
                "analyzer:unsafe-probe-point",
                format!(
                    "{program}: {target:?} is {} bytes, below the {MIN_PATCHABLE_BYTES}-byte \
                     patch minimum — installing would corrupt the next symbol",
                    f.size_bytes
                ),
            ));
        }
        // Branch-into-patch hazard: a CFG branch targeting the prologue
        // bytes the entry patch overwrites would execute half-relocated
        // instructions (the image also rejects this at install time; the
        // analyzer surfaces it before any daemon round-trip is wasted).
        if let Some(target_off) = f.branch_into_patch(MIN_PATCHABLE_BYTES) {
            out.push(finding(
                Severity::Error,
                "analyzer:branch-into-patch",
                format!(
                    "{program}: {target:?} has a branch target at offset {target_off}, inside \
                     the {MIN_PATCHABLE_BYTES}-byte patched prologue — entry instrumentation \
                     would be re-entered mid-jump"
                ),
            ));
        }
        // Static + dynamic double instrumentation: both layers fire on
        // every call and the measurements double-count each other.
        if f.statically_instrumented {
            out.push(finding(
                Severity::Warning,
                "analyzer:double-instrumentation",
                format!(
                    "{program}: {target:?} already carries static (Guide) instrumentation; \
                     patching it dynamically double-counts every call"
                ),
            ));
        }
    }

    // Functions nobody targets but which *could never* be patched are
    // worth knowing about (a later plan may pick them up).
    for f in manifest {
        if f.size_bytes < MIN_PATCHABLE_BYTES && !plan.targets.iter().any(|t| t == &f.name) {
            out.push(finding(
                Severity::Warning,
                "analyzer:unsafe-probe-point",
                format!(
                    "{program}: {:?} is {} bytes and can never hold a probe",
                    f.name, f.size_bytes
                ),
            ));
        }
    }

    // Snippet-chain cost budget (per traversal of one probe point).
    let chain = plan.chain_cost();
    if chain > budget.max_chain_cost {
        out.push(finding(
            Severity::Error,
            "analyzer:cost-budget",
            format!(
                "{program}: snippet chain costs {}ns per traversal, over the {}ns budget",
                chain.as_nanos(),
                budget.max_chain_cost.as_nanos()
            ),
        ));
    }

    // Trampoline memory: entry+exit base trampolines plus the chains.
    let per_point = BASE_TRAMPOLINE_BYTES + MINI_TRAMPOLINE_BYTES * plan.snippets_per_point;
    let total = 2 * per_point * plan.targets.len();
    if total > budget.max_trampoline_bytes {
        out.push(finding(
            Severity::Warning,
            "analyzer:trampoline-bytes",
            format!(
                "{program}: plan allocates {total} trampoline bytes, over the {} budget",
                budget.max_trampoline_bytes
            ),
        ));
    }

    out.sort_by_key(|f| std::cmp::Reverse(f.severity));
    out
}

/// Epoch-safety check for an activation-table delta — the changes an
/// adaptive controller (or a manual safe-point edit) wants to broadcast
/// as `(symbol, activate)` pairs. Flags:
///
/// * contradictory entries (a symbol both activated and deactivated in
///   the same delta) — an error: the applied table would depend on entry
///   order;
/// * duplicate consistent entries — a warning (harmless but suspicious);
/// * a delta that deactivates every named symbol while activating none —
///   a warning: usually a sign the controller's budget is unreachably low
///   and coverage is collapsing;
/// * symbols not present in `known` (when a registry is supplied) — a
///   warning: the entry will never match anything.
pub fn check_activation_delta(
    changes: &[(String, bool)],
    known: Option<&[String]>,
) -> Vec<Finding> {
    let mut out = Vec::new();
    let mut states: BTreeMap<&str, bool> = BTreeMap::new();
    for (name, on) in changes {
        match states.insert(name.as_str(), *on) {
            Some(prev) if prev != *on => out.push(finding(
                Severity::Error,
                "analyzer:contradictory-delta",
                format!("activation delta sets {name:?} both on and off"),
            )),
            Some(_) => out.push(finding(
                Severity::Warning,
                "analyzer:duplicate-delta-entry",
                format!("activation delta names {name:?} more than once"),
            )),
            None => {}
        }
    }
    if !changes.is_empty() && changes.iter().all(|(_, on)| !*on) {
        out.push(finding(
            Severity::Warning,
            "analyzer:coverage-collapse",
            format!(
                "activation delta deactivates all {} named symbols and activates none",
                states.len()
            ),
        ));
    }
    if let Some(known) = known {
        for name in states.keys() {
            if !known.iter().any(|k| k == name) {
                out.push(finding(
                    Severity::Warning,
                    "analyzer:unknown-symbol",
                    format!("activation delta names {name:?}, not in the function registry"),
                ));
            }
        }
    }
    out.sort_by_key(|f| std::cmp::Reverse(f.severity));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest() -> Vec<FunctionInfo> {
        vec![
            FunctionInfo::new("solve").with_size(256),
            FunctionInfo::new("tiny_stub").with_size(MIN_PATCHABLE_BYTES - 1),
            FunctionInfo::new("static_fn")
                .with_size(128)
                .static_instr(true),
        ]
    }

    #[test]
    fn clean_plan_has_no_errors() {
        let plan = ProbePlan::timer_pair(vec!["solve".into()]);
        let f = analyze("app", &manifest(), &plan, &Budget::default());
        assert!(f.iter().all(|x| x.severity == Severity::Warning), "{f:?}");
        // The untargeted tiny stub is still surfaced as a warning.
        assert!(f
            .iter()
            .any(|x| x.detector == "analyzer:unsafe-probe-point"));
    }

    #[test]
    fn too_small_target_is_an_error() {
        let plan = ProbePlan::timer_pair(vec!["tiny_stub".into()]);
        let f = analyze("app", &manifest(), &plan, &Budget::default());
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Error && x.detector == "analyzer:unsafe-probe-point"));
    }

    #[test]
    fn double_instrumentation_is_flagged() {
        let plan = ProbePlan::timer_pair(vec!["static_fn".into()]);
        let f = analyze("app", &manifest(), &plan, &Budget::default());
        assert!(f
            .iter()
            .any(|x| x.detector == "analyzer:double-instrumentation"));
    }

    #[test]
    fn duplicate_symbols_and_unknown_targets_error() {
        let mut m = manifest();
        m.push(FunctionInfo::new("solve"));
        let plan = ProbePlan::timer_pair(vec!["nonesuch".into()]);
        let f = analyze("app", &m, &plan, &Budget::default());
        assert!(f.iter().any(|x| x.detector == "analyzer:duplicate-symbol"));
        assert!(f.iter().any(|x| x.detector == "analyzer:unknown-target"));
    }

    #[test]
    fn branch_into_patch_target_is_an_error() {
        use dynprof_image::BasicBlock;
        let mut m = manifest();
        m.push(FunctionInfo::new("looper").with_size(512).with_blocks(vec![
            BasicBlock::new(0, vec![64]),
            BasicBlock::new(64, vec![8, 128]),
        ]));
        // Targeted: error.
        let plan = ProbePlan::timer_pair(vec!["looper".into()]);
        let f = analyze("app", &m, &plan, &Budget::default());
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Error && x.detector == "analyzer:branch-into-patch"));
        // Untargeted: silent (the hazard only matters when patched).
        let plan = ProbePlan::timer_pair(vec!["solve".into()]);
        let f = analyze("app", &m, &plan, &Budget::default());
        assert!(!f.iter().any(|x| x.detector == "analyzer:branch-into-patch"));
    }

    #[test]
    fn chain_cost_over_budget_errors() {
        let plan = ProbePlan {
            targets: vec!["solve".into()],
            snippets_per_point: 100,
            snippet_cost: SimTime::from_nanos(800),
        };
        let f = analyze("app", &manifest(), &plan, &Budget::default());
        assert!(f
            .iter()
            .any(|x| x.severity == Severity::Error && x.detector == "analyzer:cost-budget"));
    }

    #[test]
    fn activation_delta_checks() {
        let known = vec!["hot".to_string(), "rare".to_string()];
        // Clean delta.
        let f = check_activation_delta(
            &[("hot".into(), false), ("rare".into(), true)],
            Some(&known),
        );
        assert!(f.is_empty(), "{f:?}");
        // Contradiction is an error.
        let f =
            check_activation_delta(&[("hot".into(), false), ("hot".into(), true)], Some(&known));
        assert!(
            f.iter()
                .any(|x| x.severity == Severity::Error
                    && x.detector == "analyzer:contradictory-delta")
        );
        // All-off collapse and unknown symbols warn.
        let f = check_activation_delta(
            &[("hot".into(), false), ("nonesuch".into(), false)],
            Some(&known),
        );
        assert!(f.iter().any(|x| x.detector == "analyzer:coverage-collapse"));
        assert!(f.iter().any(|x| x.detector == "analyzer:unknown-symbol"));
        assert!(f.iter().all(|x| x.severity == Severity::Warning));
    }

    #[test]
    fn errors_sort_before_warnings() {
        let plan = ProbePlan::timer_pair(vec!["tiny_stub".into(), "static_fn".into()]);
        let f = analyze("app", &manifest(), &plan, &Budget::default());
        let first_warning = f.iter().position(|x| x.severity == Severity::Warning);
        let last_error = f.iter().rposition(|x| x.severity == Severity::Error);
        if let (Some(w), Some(e)) = (first_warning, last_error) {
            assert!(e < w);
        }
    }
}
