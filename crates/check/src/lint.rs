//! Determinism source lint.
//!
//! The entire experiment pipeline depends on the simulator being
//! bit-for-bit reproducible: the same seed must produce the same figures
//! on every run. A single `Instant::now()` in the wrong place silently
//! breaks that. This is a token-level lint — comments and string literals
//! are stripped, then each remaining line is matched against a small set
//! of banned constructs:
//!
//! * `Instant::now` / `SystemTime` — wall clocks in simulation code;
//! * `thread::sleep` — real sleeping outside the real-threads mode;
//! * `rand::` — ambient randomness instead of `dynprof_sim::rng`;
//! * iterating a `HashMap`/`HashSet` in a file that produces figure/JSON
//!   output, without sorting — nondeterministic output order.
//!
//! A second, scope-aware pass enforces the engine's locking discipline
//! (see `crates/sim/src/engine.rs`):
//!
//! * `unpark-under-lock` — calling `.unpark()` while an `inner` or
//!   `heaps` mutex guard is live wakes a thread that immediately blocks
//!   on the mutex we still hold (an extra context switch plus a futex
//!   round trip per event);
//! * `heaps-before-inner` — acquiring `inner` while a `heaps` guard is
//!   live inverts the one allowed nesting order (`inner` before `heaps`)
//!   and can deadlock against the dispatch path.
//!
//! Audited exceptions live in an allowlist file (`dynlint.allow`), one
//! `path-suffix rule` pair per line.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use dynprof_sim::hb::{Finding, Severity};

/// One audited exception: findings for `rule` in files whose path ends
/// with `path_suffix` are suppressed.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Path suffix the exception applies to (e.g. `crates/sim/src/engine.rs`).
    pub path_suffix: String,
    /// Rule name (e.g. `instant-now`) or `*` for every rule.
    pub rule: String,
}

/// Parse an allowlist file: `path-suffix rule` per line, `#` comments.
pub fn parse_allowlist(text: &str) -> Vec<Allow> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            let path_suffix = it.next()?.to_string();
            let rule = it.next()?.to_string();
            Some(Allow { path_suffix, rule })
        })
        .collect()
}

fn allowed(allow: &[Allow], path: &str, rule: &str) -> bool {
    allow
        .iter()
        .any(|a| path.ends_with(&a.path_suffix) && (a.rule == "*" || a.rule == rule))
}

/// Blank out comments and string literals, preserving line structure so
/// reported line numbers match the source.
pub fn strip_code(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            // Line comment.
            while i < n && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Block comment (nested, as in Rust).
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
        } else if c == '"' {
            // String literal (handles escapes; raw strings are close
            // enough for a token lint since `"` still delimits them).
            out.push(' ');
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                }
                if i < n {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            i += 1;
        } else if c == '\'' && i + 2 < n && (b[i + 1] == '\\' || b[i + 2] == '\'') {
            // Char literal ('x' or '\n'); lifetimes ('a) fall through.
            out.push(' ');
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

struct Rule {
    name: &'static str,
    detector: &'static str,
    token: &'static str,
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "instant-now",
        detector: "lint:instant-now",
        token: "Instant::now",
        why: "wall clock in simulation code breaks reproducibility",
    },
    Rule {
        name: "system-time",
        detector: "lint:system-time",
        token: "SystemTime",
        why: "wall clock in simulation code breaks reproducibility",
    },
    Rule {
        name: "thread-sleep",
        detector: "lint:thread-sleep",
        token: "thread::sleep",
        why: "real sleeping is only legal in real-threads mode",
    },
    Rule {
        name: "rand-crate",
        detector: "lint:rand-crate",
        token: "rand::",
        why: "ambient randomness: use dynprof_sim::rng instead",
    },
];

/// Does `hay` contain `needle` not immediately preceded by an identifier
/// character? Guards against suffix matches inside longer identifiers
/// (`my_rand::` must not match `rand::`) while still catching qualified
/// paths (`std::thread::sleep` matches `thread::sleep`).
fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let pre = hay[..abs].chars().next_back();
        if !pre.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        from = abs + needle.len();
    }
    false
}

/// Lint one file's source. `path` is the repo-relative display path used
/// in messages and matched against the allowlist.
pub fn lint_source(path: &str, src: &str, allow: &[Allow]) -> Vec<Finding> {
    let stripped = strip_code(src);
    let mut out = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        for rule in RULES {
            if token_match(line, rule.token) && !allowed(allow, path, rule.name) {
                out.push(Finding {
                    severity: Severity::Error,
                    detector: rule.detector,
                    message: format!("{path}:{}: `{}` — {}", lineno + 1, rule.token, rule.why),
                });
            }
        }
    }
    out.extend(lint_hash_iteration(path, &stripped, allow));
    out.extend(lint_lock_discipline(path, &stripped, allow));
    out
}

/// Which engine mutex a tracked guard holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum LockKind {
    Inner,
    Heaps,
}

/// One live mutex guard tracked by the lock-discipline scanner.
struct Guard {
    kind: LockKind,
    name: String,
    /// Brace depth where the guard was bound; the guard dies for good
    /// when scanning exits this scope.
    bind_depth: usize,
    /// `Some(d)`: an explicit `drop(name)` was seen at depth `d`. The
    /// guard is dead while depth stays `>= d`, but *revives* when the
    /// scan leaves that block — a `drop` inside one `match` arm must not
    /// absolve a sibling arm where the guard is still held.
    suppressed_at: Option<usize>,
}

impl Guard {
    fn live(&self) -> bool {
        self.suppressed_at.is_none()
    }
}

/// Identifier bound by `let [mut] name = ...` on this line, if the lock
/// call at byte `pos` is part of such a binding. Temporaries
/// (`self.inner.lock().field`) return `None` — their guard dies at the
/// end of the statement and cannot overlap an `unpark`.
fn binding_name(line: &str, pos: usize) -> Option<String> {
    let trimmed = line.trim_start();
    let rest = trimmed.strip_prefix("let ")?;
    let rest = rest.trim_start();
    let rest = rest.strip_prefix("mut ").unwrap_or(rest);
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    // The `=` must sit between the binding and the lock call.
    let eq = line.find('=')?;
    if name.is_empty() || eq > pos {
        return None;
    }
    Some(name)
}

/// Scope-aware scan for the engine's locking discipline: `unpark` calls
/// while an `inner`/`heaps` guard is held, and `inner` acquisition while
/// a `heaps` guard is held (the reverse of the one allowed nesting
/// order). Guards bound by `let` are tracked through nested blocks;
/// `drop(guard)` releases them for the remainder of that block only, so
/// a sibling `match` arm still sees the guard as held.
fn lint_lock_discipline(path: &str, stripped: &str, allow: &[Allow]) -> Vec<Finding> {
    let unpark_allowed = allowed(allow, path, "unpark-under-lock");
    let order_allowed = allowed(allow, path, "heaps-before-inner");
    let mut out = Vec::new();
    let mut depth: usize = 0;
    let mut guards: Vec<Guard> = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        let bytes = line.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            if bytes[i] == b'{' {
                depth += 1;
                i += 1;
                continue;
            }
            if bytes[i] == b'}' {
                depth = depth.saturating_sub(1);
                guards.retain(|g| depth >= g.bind_depth);
                for g in &mut guards {
                    if g.suppressed_at.is_some_and(|d| depth < d) {
                        g.suppressed_at = None;
                    }
                }
                i += 1;
                continue;
            }
            let rest = &line[i..];
            if rest.starts_with(".inner.lock()") {
                if !order_allowed {
                    if let Some(h) = guards
                        .iter()
                        .find(|g| g.kind == LockKind::Heaps && g.live())
                    {
                        out.push(Finding {
                            severity: Severity::Error,
                            detector: "lint:heaps-before-inner",
                            message: format!(
                                "{path}:{}: acquiring `inner` while heaps guard `{}` is \
                                 held — the allowed nesting order is inner before heaps",
                                lineno + 1,
                                h.name
                            ),
                        });
                    }
                }
                if let Some(name) = binding_name(line, i) {
                    guards.push(Guard {
                        kind: LockKind::Inner,
                        name,
                        bind_depth: depth,
                        suppressed_at: None,
                    });
                }
                i += ".inner.lock()".len();
                continue;
            }
            if rest.starts_with(".heaps.lock()") {
                if let Some(name) = binding_name(line, i) {
                    guards.push(Guard {
                        kind: LockKind::Heaps,
                        name,
                        bind_depth: depth,
                        suppressed_at: None,
                    });
                }
                i += ".heaps.lock()".len();
                continue;
            }
            if rest.starts_with(".unpark()") {
                if !unpark_allowed {
                    if let Some(g) = guards.iter().find(|g| g.live()) {
                        out.push(Finding {
                            severity: Severity::Error,
                            detector: "lint:unpark-under-lock",
                            message: format!(
                                "{path}:{}: `unpark` while mutex guard `{}` is held — \
                                 the woken thread blocks straight back on the lock",
                                lineno + 1,
                                g.name
                            ),
                        });
                    }
                }
                i += ".unpark()".len();
                continue;
            }
            let drop_boundary = i == 0
                || !line[..i]
                    .chars()
                    .next_back()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_');
            if rest.starts_with("drop(") && drop_boundary {
                // `drop(name)` — release that guard for this block.
                let inner = &rest["drop(".len()..];
                let name: String = inner
                    .chars()
                    .take_while(|c| c.is_alphanumeric() || *c == '_')
                    .collect();
                for g in &mut guards {
                    if g.name == name && g.live() {
                        g.suppressed_at = Some(depth);
                    }
                }
                i += "drop(".len();
                continue;
            }
            i += 1;
        }
    }
    out
}

/// Files that produce figure/JSON output must not iterate hash containers
/// without sorting: the iteration order would leak into the artifact.
fn lint_hash_iteration(path: &str, stripped: &str, allow: &[Allow]) -> Vec<Finding> {
    let lower = stripped.to_lowercase();
    let produces_output = lower.contains("json") || lower.contains("fig");
    if !produces_output || allowed(allow, path, "hash-iter-output") {
        return Vec::new();
    }
    // Collect identifiers bound to hash containers.
    let mut hash_vars: Vec<String> = Vec::new();
    for line in stripped.lines() {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: HashMap<..>` or `let [mut] name = HashMap::new()`.
        if let Some(rest) = line.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                hash_vars.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        for var in &hash_vars {
            let mut probes = String::new();
            for accessor in [".iter()", ".keys()", ".values()", ".into_iter()"] {
                probes.clear();
                let _ = write!(probes, "{var}{accessor}");
                if token_match(line, &probes) && !line.contains("sort") && !line.contains("collect")
                {
                    out.push(Finding {
                        severity: Severity::Error,
                        detector: "lint:hash-iter-output",
                        message: format!(
                            "{path}:{}: iterating hash container `{var}` in an \
                             output-producing file without sorting",
                            lineno + 1
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Lint every `.rs` file under `root/<dir>` for each of `dirs`.
/// Returns findings with repo-relative paths.
pub fn lint_tree(root: &Path, dirs: &[&str], allow: &[Allow]) -> Vec<Finding> {
    let mut out = Vec::new();
    for dir in dirs {
        walk(&root.join(dir), root, allow, &mut out);
    }
    out
}

fn walk(dir: &Path, root: &Path, allow: &[Allow], out: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, root, allow, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(src) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.extend(lint_source(&rel, &src, allow));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let a = 1; // Instant::now\nlet b = \"SystemTime\"; /* rand:: */ let c;\n";
        let s = strip_code(src);
        assert!(!s.contains("Instant::now"));
        assert!(!s.contains("SystemTime"));
        assert!(!s.contains("rand::"));
        assert!(s.contains("let c;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn banned_tokens_are_reported_with_lines() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let f = lint_source("x.rs", src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].detector, "lint:instant-now");
        assert!(f[0].message.contains("x.rs:2"), "{}", f[0].message);
    }

    #[test]
    fn commented_tokens_are_ignored() {
        let src = "// Instant::now is banned\nfn f() {}\n";
        assert!(lint_source("x.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_suffix_and_rule() {
        let src = "let t = Instant::now();\nstd::thread::sleep(d);\n";
        let allow = parse_allowlist("crates/sim/src/engine.rs instant-now # real clock\n");
        let f = lint_source("crates/sim/src/engine.rs", src, &allow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].detector, "lint:thread-sleep");
        let all = parse_allowlist("engine.rs *\n");
        assert!(lint_source("crates/sim/src/engine.rs", src, &all).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(!token_match("my_rand::thing()", "rand::"));
        assert!(token_match("rand::thread_rng()", "rand::"));
        assert!(!token_match("operand::x", "rand::"));
        assert!(token_match("std::thread::sleep(d)", "thread::sleep"));
        assert!(token_match("std::time::Instant::now()", "Instant::now"));
    }

    #[test]
    fn unpark_under_live_guard_flagged() {
        let src = "fn f(&self) {\n    let mut g = self.inner.lock();\n    t.unpark();\n}\n";
        let f = lint_source("x.rs", src, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].detector, "lint:unpark-under-lock");
        assert!(f[0].message.contains("x.rs:3"), "{}", f[0].message);
        assert!(f[0].message.contains("`g`"), "{}", f[0].message);
    }

    #[test]
    fn unpark_after_drop_is_clean() {
        let src =
            "fn f(&self) {\n    let mut g = self.inner.lock();\n    drop(g);\n    t.unpark();\n}\n";
        assert!(lint_source("x.rs", src, &[]).is_empty());
        // A heaps guard counts too.
        let src = "fn f(&self) {\n    let h = self.heaps.lock();\n    t.unpark();\n}\n";
        let f = lint_source("x.rs", src, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
    }

    #[test]
    fn drop_in_one_match_arm_does_not_absolve_siblings() {
        // Mirrors the engine's run() loop: `drop(g)` inside the `Some`
        // arm, an unpark in the sibling `None` arm where `g` is still
        // live. Only the second unpark is a violation.
        let src = "fn f(&self) {\n\
                   \x20   let mut g = self.inner.lock();\n\
                   \x20   match x {\n\
                   \x20       Some(t) => {\n\
                   \x20           drop(g);\n\
                   \x20           t.unpark();\n\
                   \x20       }\n\
                   \x20       None => {\n\
                   \x20           t.unpark();\n\
                   \x20       }\n\
                   \x20   }\n\
                   }\n";
        let f = lint_source("x.rs", src, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert!(f[0].message.contains("x.rs:9"), "{}", f[0].message);
    }

    #[test]
    fn guard_dies_with_its_scope() {
        let src = "fn f(&self) {\n\
                   \x20   {\n\
                   \x20       let mut g = self.inner.lock();\n\
                   \x20   }\n\
                   \x20   t.unpark();\n\
                   }\n";
        assert!(lint_source("x.rs", src, &[]).is_empty());
    }

    #[test]
    fn heaps_before_inner_flagged_but_inner_before_heaps_allowed() {
        let bad = "fn f(&self) {\n    let mut h = self.heaps.lock();\n    let mut g = self.inner.lock();\n}\n";
        let f = lint_source("x.rs", bad, &[]);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].detector, "lint:heaps-before-inner");
        // The one allowed nesting order: inner, then heaps.
        let good = "fn f(&self) {\n    let mut g = self.inner.lock();\n    let mut h = self.heaps.lock();\n}\n";
        assert!(lint_source("x.rs", good, &[]).is_empty());
    }

    #[test]
    fn lock_discipline_respects_allowlist() {
        let src = "fn f(&self) {\n    let mut g = self.inner.lock();\n    t.unpark();\n}\n";
        let allow = parse_allowlist("engine.rs unpark-under-lock # direct handoff\n");
        assert!(lint_source("crates/sim/src/engine.rs", src, &allow).is_empty());
        // Other files still flagged.
        assert_eq!(lint_source("x.rs", src, &allow).len(), 1);
    }

    #[test]
    fn engine_rs_has_exactly_the_two_audited_unpark_sites() {
        // The allowlist entry for engine.rs covers two audited sites:
        // `abort()`'s panic teardown and `run()`'s deadlock verdict.
        // Lint the real source *without* the allowlist and pin that
        // count — a third site must be a fresh audit, not a free pass.
        let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../sim/src/engine.rs");
        let src = std::fs::read_to_string(path).expect("engine.rs readable");
        let f = lint_source("crates/sim/src/engine.rs", &src, &[]);
        let unparks: Vec<_> = f
            .iter()
            .filter(|x| x.detector == "lint:unpark-under-lock")
            .collect();
        assert_eq!(unparks.len(), 2, "{unparks:?}");
        // And the nesting order is never inverted, allowlist or not.
        assert!(
            !f.iter().any(|x| x.detector == "lint:heaps-before-inner"),
            "{f:?}"
        );
    }

    #[test]
    fn hash_iteration_in_output_file_flagged() {
        let src =
            "fn fig7() {\n    let m = HashMap::new();\n    for k in m.keys() { emit(k); }\n}\n";
        let f = lint_source("figures.rs", src, &[]);
        assert!(
            f.iter().any(|x| x.detector == "lint:hash-iter-output"),
            "{f:?}"
        );
        // Sorting on the same statement is accepted.
        let sorted = "fn fig7() {\n    let m = HashMap::new();\n    let mut v: Vec<_> = m.keys().collect();\n    v.sort();\n}\n";
        assert!(lint_source("figures.rs", sorted, &[]).is_empty());
        // Non-output files are not subject to the rule.
        let f = lint_source("engine.rs", src.replace("fig7", "step").as_str(), &[]);
        assert!(f.is_empty());
    }
}
