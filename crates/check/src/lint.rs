//! Determinism source lint.
//!
//! The entire experiment pipeline depends on the simulator being
//! bit-for-bit reproducible: the same seed must produce the same figures
//! on every run. A single `Instant::now()` in the wrong place silently
//! breaks that. This is a token-level lint — comments and string literals
//! are stripped, then each remaining line is matched against a small set
//! of banned constructs:
//!
//! * `Instant::now` / `SystemTime` — wall clocks in simulation code;
//! * `thread::sleep` — real sleeping outside the real-threads mode;
//! * `rand::` — ambient randomness instead of `dynprof_sim::rng`;
//! * iterating a `HashMap`/`HashSet` in a file that produces figure/JSON
//!   output, without sorting — nondeterministic output order.
//!
//! Audited exceptions live in an allowlist file (`dynlint.allow`), one
//! `path-suffix rule` pair per line.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

use dynprof_sim::hb::{Finding, Severity};

/// One audited exception: findings for `rule` in files whose path ends
/// with `path_suffix` are suppressed.
#[derive(Clone, Debug)]
pub struct Allow {
    /// Path suffix the exception applies to (e.g. `crates/sim/src/engine.rs`).
    pub path_suffix: String,
    /// Rule name (e.g. `instant-now`) or `*` for every rule.
    pub rule: String,
}

/// Parse an allowlist file: `path-suffix rule` per line, `#` comments.
pub fn parse_allowlist(text: &str) -> Vec<Allow> {
    text.lines()
        .filter_map(|line| {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                return None;
            }
            let mut it = line.split_whitespace();
            let path_suffix = it.next()?.to_string();
            let rule = it.next()?.to_string();
            Some(Allow { path_suffix, rule })
        })
        .collect()
}

fn allowed(allow: &[Allow], path: &str, rule: &str) -> bool {
    allow
        .iter()
        .any(|a| path.ends_with(&a.path_suffix) && (a.rule == "*" || a.rule == rule))
}

/// Blank out comments and string literals, preserving line structure so
/// reported line numbers match the source.
pub fn strip_code(src: &str) -> String {
    let mut out = String::with_capacity(src.len());
    let b: Vec<char> = src.chars().collect();
    let mut i = 0;
    let n = b.len();
    while i < n {
        let c = b[i];
        if c == '/' && i + 1 < n && b[i + 1] == '/' {
            // Line comment.
            while i < n && b[i] != '\n' {
                i += 1;
            }
        } else if c == '/' && i + 1 < n && b[i + 1] == '*' {
            // Block comment (nested, as in Rust).
            let mut depth = 1;
            i += 2;
            while i < n && depth > 0 {
                if b[i] == '/' && i + 1 < n && b[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if b[i] == '*' && i + 1 < n && b[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
        } else if c == '"' {
            // String literal (handles escapes; raw strings are close
            // enough for a token lint since `"` still delimits them).
            out.push(' ');
            i += 1;
            while i < n && b[i] != '"' {
                if b[i] == '\\' {
                    i += 1;
                }
                if i < n {
                    if b[i] == '\n' {
                        out.push('\n');
                    }
                    i += 1;
                }
            }
            i += 1;
        } else if c == '\'' && i + 2 < n && (b[i + 1] == '\\' || b[i + 2] == '\'') {
            // Char literal ('x' or '\n'); lifetimes ('a) fall through.
            out.push(' ');
            i += 1;
            while i < n && b[i] != '\'' {
                if b[i] == '\\' {
                    i += 1;
                }
                i += 1;
            }
            i += 1;
        } else {
            out.push(c);
            i += 1;
        }
    }
    out
}

struct Rule {
    name: &'static str,
    detector: &'static str,
    token: &'static str,
    why: &'static str,
}

const RULES: &[Rule] = &[
    Rule {
        name: "instant-now",
        detector: "lint:instant-now",
        token: "Instant::now",
        why: "wall clock in simulation code breaks reproducibility",
    },
    Rule {
        name: "system-time",
        detector: "lint:system-time",
        token: "SystemTime",
        why: "wall clock in simulation code breaks reproducibility",
    },
    Rule {
        name: "thread-sleep",
        detector: "lint:thread-sleep",
        token: "thread::sleep",
        why: "real sleeping is only legal in real-threads mode",
    },
    Rule {
        name: "rand-crate",
        detector: "lint:rand-crate",
        token: "rand::",
        why: "ambient randomness: use dynprof_sim::rng instead",
    },
];

/// Does `hay` contain `needle` not immediately preceded by an identifier
/// character? Guards against suffix matches inside longer identifiers
/// (`my_rand::` must not match `rand::`) while still catching qualified
/// paths (`std::thread::sleep` matches `thread::sleep`).
fn token_match(hay: &str, needle: &str) -> bool {
    let mut from = 0;
    while let Some(pos) = hay[from..].find(needle) {
        let abs = from + pos;
        let pre = hay[..abs].chars().next_back();
        if !pre.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            return true;
        }
        from = abs + needle.len();
    }
    false
}

/// Lint one file's source. `path` is the repo-relative display path used
/// in messages and matched against the allowlist.
pub fn lint_source(path: &str, src: &str, allow: &[Allow]) -> Vec<Finding> {
    let stripped = strip_code(src);
    let mut out = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        for rule in RULES {
            if token_match(line, rule.token) && !allowed(allow, path, rule.name) {
                out.push(Finding {
                    severity: Severity::Error,
                    detector: rule.detector,
                    message: format!("{path}:{}: `{}` — {}", lineno + 1, rule.token, rule.why),
                });
            }
        }
    }
    out.extend(lint_hash_iteration(path, &stripped, allow));
    out
}

/// Files that produce figure/JSON output must not iterate hash containers
/// without sorting: the iteration order would leak into the artifact.
fn lint_hash_iteration(path: &str, stripped: &str, allow: &[Allow]) -> Vec<Finding> {
    let lower = stripped.to_lowercase();
    let produces_output = lower.contains("json") || lower.contains("fig");
    if !produces_output || allowed(allow, path, "hash-iter-output") {
        return Vec::new();
    }
    // Collect identifiers bound to hash containers.
    let mut hash_vars: Vec<String> = Vec::new();
    for line in stripped.lines() {
        if !(line.contains("HashMap") || line.contains("HashSet")) {
            continue;
        }
        // `let [mut] name: HashMap<..>` or `let [mut] name = HashMap::new()`.
        if let Some(rest) = line.trim_start().strip_prefix("let ") {
            let rest = rest.trim_start().strip_prefix("mut ").unwrap_or(rest);
            let name: String = rest
                .chars()
                .take_while(|c| c.is_alphanumeric() || *c == '_')
                .collect();
            if !name.is_empty() {
                hash_vars.push(name);
            }
        }
    }
    let mut out = Vec::new();
    for (lineno, line) in stripped.lines().enumerate() {
        for var in &hash_vars {
            let mut probes = String::new();
            for accessor in [".iter()", ".keys()", ".values()", ".into_iter()"] {
                probes.clear();
                let _ = write!(probes, "{var}{accessor}");
                if token_match(line, &probes) && !line.contains("sort") && !line.contains("collect")
                {
                    out.push(Finding {
                        severity: Severity::Error,
                        detector: "lint:hash-iter-output",
                        message: format!(
                            "{path}:{}: iterating hash container `{var}` in an \
                             output-producing file without sorting",
                            lineno + 1
                        ),
                    });
                }
            }
        }
    }
    out
}

/// Lint every `.rs` file under `root/<dir>` for each of `dirs`.
/// Returns findings with repo-relative paths.
pub fn lint_tree(root: &Path, dirs: &[&str], allow: &[Allow]) -> Vec<Finding> {
    let mut out = Vec::new();
    for dir in dirs {
        walk(&root.join(dir), root, allow, &mut out);
    }
    out
}

fn walk(dir: &Path, root: &Path, allow: &[Allow], out: &mut Vec<Finding>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            walk(&path, root, allow, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let Ok(src) = fs::read_to_string(&path) else {
                continue;
            };
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.extend(lint_source(&rel, &src, allow));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strip_removes_comments_and_strings() {
        let src = "let a = 1; // Instant::now\nlet b = \"SystemTime\"; /* rand:: */ let c;\n";
        let s = strip_code(src);
        assert!(!s.contains("Instant::now"));
        assert!(!s.contains("SystemTime"));
        assert!(!s.contains("rand::"));
        assert!(s.contains("let c;"));
        assert_eq!(s.lines().count(), src.lines().count());
    }

    #[test]
    fn banned_tokens_are_reported_with_lines() {
        let src = "fn f() {\n    let t = Instant::now();\n}\n";
        let f = lint_source("x.rs", src, &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].detector, "lint:instant-now");
        assert!(f[0].message.contains("x.rs:2"), "{}", f[0].message);
    }

    #[test]
    fn commented_tokens_are_ignored() {
        let src = "// Instant::now is banned\nfn f() {}\n";
        assert!(lint_source("x.rs", src, &[]).is_empty());
    }

    #[test]
    fn allowlist_suppresses_by_suffix_and_rule() {
        let src = "let t = Instant::now();\nstd::thread::sleep(d);\n";
        let allow = parse_allowlist("crates/sim/src/engine.rs instant-now # real clock\n");
        let f = lint_source("crates/sim/src/engine.rs", src, &allow);
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].detector, "lint:thread-sleep");
        let all = parse_allowlist("engine.rs *\n");
        assert!(lint_source("crates/sim/src/engine.rs", src, &all).is_empty());
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(!token_match("my_rand::thing()", "rand::"));
        assert!(token_match("rand::thread_rng()", "rand::"));
        assert!(!token_match("operand::x", "rand::"));
        assert!(token_match("std::thread::sleep(d)", "thread::sleep"));
        assert!(token_match("std::time::Instant::now()", "Instant::now"));
    }

    #[test]
    fn hash_iteration_in_output_file_flagged() {
        let src =
            "fn fig7() {\n    let m = HashMap::new();\n    for k in m.keys() { emit(k); }\n}\n";
        let f = lint_source("figures.rs", src, &[]);
        assert!(
            f.iter().any(|x| x.detector == "lint:hash-iter-output"),
            "{f:?}"
        );
        // Sorting on the same statement is accepted.
        let sorted = "fn fig7() {\n    let m = HashMap::new();\n    let mut v: Vec<_> = m.keys().collect();\n    v.sort();\n}\n";
        assert!(lint_source("figures.rs", sorted, &[]).is_empty());
        // Non-output files are not subject to the rule.
        let f = lint_source("engine.rs", src.replace("fig7", "step").as_str(), &[]);
        assert!(f.is_empty());
    }
}
