// A deliberately nondeterministic source file: dynlint's `banned-source`
// fixture. Never compiled — it exists so the lint has a guaranteed hit.

use std::time::{Instant, SystemTime};

fn measure() -> u128 {
    let t0 = Instant::now();
    std::thread::sleep(std::time::Duration::from_millis(1));
    let _wall = SystemTime::now();
    let noise = rand::random::<u8>() as u128;
    t0.elapsed().as_nanos() + noise
}
