//! End-to-end exit-code contract of the `dynlint` binary.

use std::process::Command;

fn dynlint(args: &[&str]) -> (bool, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_dynlint"))
        .args(args)
        .output()
        .expect("spawn dynlint");
    let text = format!(
        "{}{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
    (out.status.success(), text)
}

#[test]
fn real_tree_is_clean() {
    let (ok, text) = dynlint(&[]);
    assert!(ok, "dynlint failed on the real tree:\n{text}");
    assert!(text.contains("0 error(s)"), "{text}");
}

#[test]
fn collective_mismatch_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "collective-mismatch"]);
    assert!(!ok);
    assert!(text.contains("collective-mismatch"), "{text}");
}

#[test]
fn epoch_unsafe_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "epoch-unsafe"]);
    assert!(!ok);
    assert!(
        text.contains("epoch-safety") || text.contains("fixture-unavailable"),
        "{text}"
    );
}

#[test]
fn unsafe_probe_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "unsafe-probe"]);
    assert!(!ok);
    assert!(text.contains("analyzer:unsafe-probe-point"), "{text}");
}

#[test]
fn banned_source_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "banned-source"]);
    assert!(!ok);
    assert!(text.contains("lint:instant-now"), "{text}");
}

#[test]
fn unbalanced_timer_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "unbalanced-timer"]);
    assert!(!ok);
    assert!(text.contains("verify:unbalanced-timer"), "{text}");
}

#[test]
fn unbounded_loop_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "unbounded-loop"]);
    assert!(!ok);
    assert!(text.contains("verify:unbounded-loop"), "{text}");
}

#[test]
fn oob_write_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "oob-write"]);
    assert!(!ok);
    assert!(text.contains("verify:oob-write"), "{text}");
}

#[test]
fn branch_into_patch_fixture_fails() {
    let (ok, text) = dynlint(&["--fixture", "branch-into-patch"]);
    assert!(!ok);
    assert!(text.contains("analyzer:branch-into-patch"), "{text}");
}

#[test]
fn unknown_fixture_is_a_usage_error() {
    let (ok, text) = dynlint(&["--fixture", "nonesuch"]);
    assert!(!ok);
    assert!(text.contains("unknown fixture"), "{text}");
}
