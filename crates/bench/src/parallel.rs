//! A worker-thread pool for fanning out independent virtual-mode runs.
//!
//! Every figure run owns its own seeded discrete-event engine, so runs
//! are embarrassingly parallel: the pool hands jobs to workers through an
//! atomic cursor and writes each result back into the job's slot, which
//! keeps result order equal to job order regardless of which worker
//! finishes first. That order-preservation is what lets
//! [`fig7_with_workers`](crate::fig7_with_workers) emit byte-identical
//! JSON to the serial sweep.

use std::sync::atomic::{AtomicUsize, Ordering};

use parking_lot::Mutex;

use dynprof_obs as obs;

/// Run `f` over every job on `workers` threads, returning results in job
/// order. `workers <= 1` (or a single job) degenerates to a plain serial
/// loop on the calling thread.
///
/// Worker panics propagate to the caller once the pool is joined.
pub fn run<T, R, F>(jobs: &[T], workers: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    let n = jobs.len();
    let workers = workers.max(1).min(n.max(1));
    if workers == 1 {
        return jobs.iter().map(f).collect();
    }
    let _span = obs::span("bench.pool.real_ns");
    if obs::enabled() {
        obs::gauge("bench.pool.workers").set(workers as u64);
        obs::counter("bench.pool.jobs").add(n as u64);
    }
    let next = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let r = f(&jobs[i]);
                *slots[i].lock() = Some(r);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| slot.into_inner().expect("worker filled every claimed slot"))
        .collect()
}

/// A sensible worker count: the host's available parallelism.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_job_order() {
        let jobs: Vec<u64> = (0..100).collect();
        let out = run(&jobs, 8, |&j| j * j);
        assert_eq!(out, jobs.iter().map(|j| j * j).collect::<Vec<_>>());
    }

    #[test]
    fn serial_and_parallel_agree() {
        let jobs: Vec<u64> = (0..25).collect();
        let serial = run(&jobs, 1, |&j| j.wrapping_mul(0x9E37_79B9).rotate_left(7));
        let par = run(&jobs, 4, |&j| j.wrapping_mul(0x9E37_79B9).rotate_left(7));
        assert_eq!(serial, par);
    }

    #[test]
    fn empty_and_single_job_edges() {
        let jobs: Vec<()> = Vec::new();
        assert!(run(&jobs, 4, |_| 1u32).is_empty());
        assert_eq!(run(&[7], 4, |&j: &u32| j + 1), vec![8]);
    }
}
