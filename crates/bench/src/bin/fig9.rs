//! Regenerate paper Fig 9: dynprof's time to create and instrument each
//! ASCI kernel across processor counts (note Umt98's flat line — OpenMP
//! threads share a single process image).
//!
//! Usage: `fig9 [--json] [--parallel [N]] [--metrics out.json]
//!              [--faults seed[:profile]] [--txn]
//!              [--degraded-policy abort-txn|exclude-node]
//!              [--overhead-budget pct]`
//!
//! `--parallel` fans the independent (app, P) instrumentation sessions
//! across a worker-thread pool (N workers; default = available cores);
//! output is byte-identical to the serial runner.
//! `--faults` installs a deterministic fault-injection plan; profiles:
//! none, drop, dup, delay, slow, crash, epochs, lossy (default).
//! `--txn` routes instrumentation through the two-phase-commit control
//! plane; `--degraded-policy` (implies `--txn`) picks the reaction to
//! failed participants — series that committed with excluded nodes are
//! labelled `[degraded]`.

use dynprof_bench::{
    fig9_with_workers, parallel, set_overhead_budget, set_txn_policy, write_metrics,
};
use dynprof_dpcl::DegradedPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    // Optional worker count; defaults to the host parallelism.
    let workers = match args.iter().position(|a| a == "--parallel") {
        Some(i) => args
            .get(i + 1)
            .and_then(|v| v.parse::<usize>().ok())
            .map_or_else(parallel::default_workers, |n| n.max(1)),
        None => 1,
    };
    let txn = args.iter().any(|a| a == "--txn");
    let policy = args.iter().position(|a| a == "--degraded-policy").map(|i| {
        let p = args.get(i + 1).expect("--degraded-policy needs a value");
        DegradedPolicy::parse(p).unwrap_or_else(|| {
            eprintln!("unknown policy {p:?} (abort-txn|exclude-node)");
            std::process::exit(2);
        })
    });
    if txn || policy.is_some() {
        set_txn_policy(Some(policy.unwrap_or(DegradedPolicy::AbortTxn)));
    }
    if let Some(i) = args.iter().position(|a| a == "--overhead-budget") {
        let pct = args.get(i + 1).expect("--overhead-budget needs a percent");
        match pct.parse::<f64>() {
            Ok(p) if p >= 0.0 => set_overhead_budget(Some(p)),
            _ => {
                eprintln!("bad --overhead-budget value {pct:?} (percent, >= 0)");
                std::process::exit(2);
            }
        }
    }
    let metrics = args
        .iter()
        .position(|a| a == "--metrics")
        .map(|i| args.get(i + 1).expect("--metrics needs a path").clone());
    if metrics.is_some() {
        dynprof_obs::set_enabled(true);
    }
    if let Some(i) = args.iter().position(|a| a == "--faults") {
        let spec = args.get(i + 1).expect("--faults needs seed[:profile]");
        match dynprof_sim::fault::FaultSpec::parse(spec) {
            Ok(s) => dynprof_sim::fault::set_global_spec(Some(s)),
            Err(e) => {
                eprintln!("bad --faults value: {e}");
                std::process::exit(2);
            }
        }
    }
    let fig = fig9_with_workers(workers);
    if json {
        println!("{}", fig.to_json());
    } else {
        println!("{}", fig.render());
    }
    if let Some(path) = metrics {
        write_metrics(&path).unwrap_or_else(|e| {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        });
    }
}
