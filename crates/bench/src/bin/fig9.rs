//! Regenerate paper Fig 9: dynprof's time to create and instrument each
//! ASCI kernel across processor counts (note Umt98's flat line — OpenMP
//! threads share a single process image).
//!
//! Usage: `fig9 [--json]`

use dynprof_bench::fig9;

fn main() {
    let json = std::env::args().any(|a| a == "--json");
    let fig = fig9();
    if json {
        println!("{}", fig.to_json());
    } else {
        println!("{}", fig.render());
    }
}
