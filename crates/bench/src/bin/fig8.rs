//! Regenerate paper Fig 8 (a–c): the cost of dynamic control of
//! instrumentation (`VT_confsync`).
//!
//! Usage: `fig8 [--part a|b|c] [--runs N] [--json] [--parallel [N]]
//!              [--metrics out.json] [--faults seed[:profile]] [--txn]
//!              [--degraded-policy abort-txn|exclude-node]
//!              [--overhead-budget pct]`
//! (default: all parts, 16 runs per point — the paper's averaging).
//! `--parallel` fans the independent (proc count, seed) runs across a
//! worker-thread pool (N workers; default = available cores); output is
//! byte-identical to the serial runner.
//! `--faults` installs a deterministic fault-injection plan; profiles:
//! none, drop, dup, delay, slow, crash, epochs, lossy (default).
//! `--txn`/`--degraded-policy` configure the two-phase-commit control
//! plane for sweep-script uniformity with fig7/fig9; the confsync
//! experiments install no probes, so the knobs (and `--overhead-budget`)
//! change nothing here.

use dynprof_bench::{
    fig8a_with_workers, fig8b_with_workers, fig8c_with_workers, parallel, set_overhead_budget,
    set_txn_policy, write_metrics, Figure,
};
use dynprof_dpcl::DegradedPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut parts = vec!['a', 'b', 'c'];
    let mut runs = 16usize;
    let mut json = false;
    let mut workers = 1;
    let mut metrics: Option<String> = None;
    let mut txn = false;
    let mut policy: Option<DegradedPolicy> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--txn" => txn = true,
            "--overhead-budget" => {
                i += 1;
                let pct = args.get(i).expect("--overhead-budget needs a percent");
                match pct.parse::<f64>() {
                    Ok(p) if p >= 0.0 => set_overhead_budget(Some(p)),
                    _ => {
                        eprintln!("bad --overhead-budget value {pct:?} (percent, >= 0)");
                        std::process::exit(2);
                    }
                }
            }
            "--degraded-policy" => {
                i += 1;
                let p = args.get(i).expect("--degraded-policy needs a value");
                policy = match DegradedPolicy::parse(p) {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("unknown policy {p:?} (abort-txn|exclude-node)");
                        std::process::exit(2);
                    }
                };
            }
            "--part" => {
                i += 1;
                let p = args.get(i).expect("--part needs a value");
                parts = vec![p.chars().next().expect("part letter")];
            }
            "--runs" => {
                i += 1;
                runs = args
                    .get(i)
                    .expect("--runs needs a value")
                    .parse()
                    .expect("run count");
            }
            "--json" => json = true,
            "--parallel" => {
                // Optional worker count; defaults to the host parallelism.
                workers = match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => {
                        i += 1;
                        n.max(1)
                    }
                    None => parallel::default_workers(),
                };
            }
            "--metrics" => {
                i += 1;
                let path = args.get(i).expect("--metrics needs a path").clone();
                dynprof_obs::set_enabled(true);
                metrics = Some(path);
            }
            "--faults" => {
                i += 1;
                let spec = args.get(i).expect("--faults needs seed[:profile]");
                match dynprof_sim::fault::FaultSpec::parse(spec) {
                    Ok(s) => dynprof_sim::fault::set_global_spec(Some(s)),
                    Err(e) => {
                        eprintln!("bad --faults value: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if txn || policy.is_some() {
        set_txn_policy(Some(policy.unwrap_or(DegradedPolicy::AbortTxn)));
    }
    for part in parts {
        let fig: Figure = match part {
            'a' => fig8a_with_workers(runs, workers),
            'b' => fig8b_with_workers(runs, workers),
            'c' => fig8c_with_workers(runs, workers),
            other => {
                eprintln!("unknown part {other:?}");
                std::process::exit(2);
            }
        };
        if json {
            println!("{}", fig.to_json());
        } else {
            println!("{}", fig.render());
        }
    }
    if let Some(path) = metrics {
        write_metrics(&path).unwrap_or_else(|e| {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        });
    }
}
