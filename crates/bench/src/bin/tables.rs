//! Print paper Tables 1–3 as reproduced by this implementation.

use dynprof_bench::{table1, table2, table3};

fn main() {
    println!("{}", table1());
    println!("{}", table2());
    println!("{}", table3());
}
