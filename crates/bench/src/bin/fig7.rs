//! Regenerate paper Fig 7 (a–d): execution time of the instrumented ASCI
//! kernels under the five Table-3 policies.
//!
//! Usage: `fig7 [--app smg98|sppm|sweep3d|umt98] [--json]`

use dynprof_bench::fig7;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps = vec!["smg98", "sppm", "sweep3d", "umt98"];
    let mut json = false;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--app" => {
                i += 1;
                let a = args.get(i).expect("--app needs a value").clone();
                if !["smg98", "sppm", "sweep3d", "umt98"].contains(&a.as_str()) {
                    eprintln!("unknown app {a:?} (smg98|sppm|sweep3d|umt98)");
                    std::process::exit(2);
                }
                apps = vec![Box::leak(a.into_boxed_str())];
            }
            "--json" => json = true,
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    for app in apps {
        let fig = fig7(app);
        if json {
            println!("{}", fig.to_json());
        } else {
            println!("{}", fig.render());
        }
    }
}
