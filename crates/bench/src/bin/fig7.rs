//! Regenerate paper Fig 7 (a–d): execution time of the instrumented ASCI
//! kernels under the five Table-3 policies.
//!
//! Usage: `fig7 [--app smg98|sppm|sweep3d|umt98] [--json]
//!              [--parallel [N]] [--metrics out.json]
//!              [--faults seed[:profile]] [--txn]
//!              [--degraded-policy abort-txn|exclude-node]
//!              [--overhead-budget pct]`
//!
//! `--parallel` fans the independent (app, policy, P) runs across a
//! worker-thread pool (N workers; default = available cores). Output is
//! byte-identical to the serial runner. `--metrics` enables the
//! self-observability layer and dumps its counters to a JSON file.
//! `--faults` installs a deterministic fault-injection plan (see
//! `dynprof_sim::fault`); profiles: none, drop, dup, delay, slow, crash,
//! epochs, lossy (default). `--txn` routes instrumentation through the
//! two-phase-commit control plane; `--degraded-policy` (implies `--txn`)
//! picks the reaction to failed participants — series that committed with
//! excluded nodes are labelled `[degraded]`. `--overhead-budget pct`
//! attaches the closed-loop overhead controller to every session; 100 or
//! more is inert (byte-identical output).

use dynprof_bench::{
    fig7_with_workers, parallel, set_overhead_budget, set_txn_policy, write_metrics,
};
use dynprof_dpcl::DegradedPolicy;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut apps = vec!["smg98", "sppm", "sweep3d", "umt98"];
    let mut json = false;
    let mut workers = 1;
    let mut metrics: Option<String> = None;
    let mut txn = false;
    let mut policy: Option<DegradedPolicy> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--txn" => txn = true,
            "--overhead-budget" => {
                i += 1;
                let pct = args.get(i).expect("--overhead-budget needs a percent");
                match pct.parse::<f64>() {
                    Ok(p) if p >= 0.0 => set_overhead_budget(Some(p)),
                    _ => {
                        eprintln!("bad --overhead-budget value {pct:?} (percent, >= 0)");
                        std::process::exit(2);
                    }
                }
            }
            "--degraded-policy" => {
                i += 1;
                let p = args.get(i).expect("--degraded-policy needs a value");
                policy = match DegradedPolicy::parse(p) {
                    Some(p) => Some(p),
                    None => {
                        eprintln!("unknown policy {p:?} (abort-txn|exclude-node)");
                        std::process::exit(2);
                    }
                };
            }
            "--app" => {
                i += 1;
                let a = args.get(i).expect("--app needs a value").clone();
                if !["smg98", "sppm", "sweep3d", "umt98"].contains(&a.as_str()) {
                    eprintln!("unknown app {a:?} (smg98|sppm|sweep3d|umt98)");
                    std::process::exit(2);
                }
                apps = vec![Box::leak(a.into_boxed_str())];
            }
            "--json" => json = true,
            "--parallel" => {
                // Optional worker count; defaults to the host parallelism.
                workers = match args.get(i + 1).and_then(|v| v.parse::<usize>().ok()) {
                    Some(n) => {
                        i += 1;
                        n.max(1)
                    }
                    None => parallel::default_workers(),
                };
            }
            "--metrics" => {
                i += 1;
                let path = args.get(i).expect("--metrics needs a path").clone();
                dynprof_obs::set_enabled(true);
                metrics = Some(path);
            }
            "--faults" => {
                i += 1;
                let spec = args.get(i).expect("--faults needs seed[:profile]");
                match dynprof_sim::fault::FaultSpec::parse(spec) {
                    Ok(s) => dynprof_sim::fault::set_global_spec(Some(s)),
                    Err(e) => {
                        eprintln!("bad --faults value: {e}");
                        std::process::exit(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument {other:?}");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    if txn || policy.is_some() {
        set_txn_policy(Some(policy.unwrap_or(DegradedPolicy::AbortTxn)));
    }
    for app in apps {
        let fig = fig7_with_workers(app, workers);
        if json {
            println!("{}", fig.to_json());
        } else {
            println!("{}", fig.render());
        }
    }
    if let Some(path) = metrics {
        write_metrics(&path).unwrap_or_else(|e| {
            eprintln!("failed to write metrics to {path}: {e}");
            std::process::exit(1);
        });
    }
}
