//! Regenerate the adaptive-controller convergence figure (beyond the
//! paper): measured instrumentation overhead per `VT_confsync` epoch on
//! sweep3d at 4 ranks, one series per overhead budget plus the
//! unbudgeted observer.
//!
//! Usage: `figctl [--epochs N] [--json]` (default: 8 epochs).

use dynprof_bench::fig_controller;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let epochs = match args.iter().position(|a| a == "--epochs") {
        Some(i) => {
            let v = args.get(i + 1).expect("--epochs needs a value");
            match v.parse::<usize>() {
                Ok(n) if n > 0 => n,
                _ => {
                    eprintln!("bad --epochs value {v:?} (positive integer)");
                    std::process::exit(2);
                }
            }
        }
        None => 8,
    };
    let fig = fig_controller(epochs);
    if json {
        println!("{}", fig.to_json());
    } else {
        println!("{}", fig.render());
    }
}
