//! Ablation studies for the design choices DESIGN.md calls out.
//!
//! ```text
//! ablation [--study sampling|probe-costs|daemon-jitter] [--json]
//! ```
//!
//! * `sampling` — complete profiling (the paper's choice for VGV) vs an
//!   ideal statistical sampler (§2's alternative): overhead, trace
//!   volume, and profile accuracy on Smg98.
//! * `probe-costs` — sensitivity of the Fig 7(a) result to the active
//!   probe-pair cost: the ~7× slowdown is a property of probe cost ×
//!   call granularity, not of a particular constant.
//! * `daemon-jitter` — sensitivity of Fig 9's create+instrument time to
//!   DPCL's asynchronous message jitter.

use dynprof_apps::{paper_app, smg98, Smg98Params};
use dynprof_core::{run_session, SessionConfig};
use dynprof_obs::Json;
use dynprof_sim::{Machine, SimTime};
use dynprof_vt::{sample_image, Policy};

fn study_sampling(json: bool) {
    let cpus = 4;
    // Complete profiling: the Full policy.
    let (app, _) = paper_app("smg98", cpus).unwrap();
    let full = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::Full).with_seed(2),
    );
    // Uninstrumented run with the PC journal: the sampler's substrate.
    let (app, _) = paper_app("smg98", cpus).unwrap();
    let none = run_session(
        &app,
        SessionConfig::new(Machine::ibm_power3_colony(), Policy::None)
            .with_seed(2)
            .with_pc_log(),
    );

    // Ground truth: the Full run's per-function inclusive shares.
    let vt = &full.vt;
    let truth_of = |name: &str| -> f64 {
        let id = match vt.func_id(name) {
            Some(i) => i,
            None => return 0.0,
        };
        (0..cpus)
            .map(|r| vt.stat_of(r, id).incl.as_secs_f64())
            .sum::<f64>()
    };
    let hot_names = [
        "hypre_StructAxpy",
        "hypre_StructCopy",
        "hypre_StructInnerProd",
    ];
    let truth_total: f64 = (0..cpus)
        .flat_map(|r| vt.stats_rows(r))
        .map(|(_, _, incl, _)| incl as f64 / 1e9)
        .sum();

    let mut rows = Vec::new();
    for interval_us in [100u64, 1_000, 10_000] {
        let interval = SimTime::from_micros(interval_us);
        let mut ticks = 0u64;
        let mut overhead = SimTime::ZERO;
        let mut err_sum = 0.0;
        for (rank, img) in none.images.iter().enumerate() {
            let prof = sample_image(img, interval, SimTime::ZERO, none.total_time);
            ticks += prof.ticks;
            overhead += prof.estimated_overhead();
            if rank == 0 {
                for name in hot_names {
                    let fid = img.func(name).unwrap();
                    let sampled = prof.share(fid);
                    let truth = truth_of(name) / truth_total.max(1e-12);
                    err_sum += (sampled - truth).abs();
                }
            }
        }
        rows.push((
            interval_us,
            ticks,
            overhead,
            err_sum / hot_names.len() as f64,
        ));
    }

    if json {
        let obj = Json::obj([
            ("study", "sampling".into()),
            (
                "complete_profiling",
                Json::obj([
                    ("app_time_s", full.app_time.as_secs_f64().into()),
                    ("baseline_s", none.app_time.as_secs_f64().into()),
                    (
                        "overhead_s",
                        (full.app_time.as_secs_f64() - none.app_time.as_secs_f64()).into(),
                    ),
                    ("trace_bytes", full.trace_bytes.into()),
                ]),
            ),
            (
                "sampling",
                Json::Arr(
                    rows.iter()
                        .map(|&(us, ticks, ov, err)| {
                            Json::obj([
                                ("interval_us", us.into()),
                                ("ticks", ticks.into()),
                                ("estimated_overhead_s", ov.as_secs_f64().into()),
                                ("mean_abs_share_error", err.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", obj.pretty());
        return;
    }
    println!("## Ablation: complete profiling vs statistical sampling (smg98, {cpus} CPUs)");
    println!(
        "complete profiling (Full): app {} vs baseline {} -> overhead {:.1} s, {} trace bytes",
        full.app_time,
        none.app_time,
        full.app_time.as_secs_f64() - none.app_time.as_secs_f64(),
        full.trace_bytes
    );
    println!(
        "{:>12} {:>12} {:>20} {:>22}",
        "interval", "ticks", "est. overhead (s)", "mean |share error|"
    );
    for (us, ticks, ov, err) in rows {
        println!(
            "{:>10}us {ticks:>12} {:>20.4} {err:>22.4}",
            us,
            ov.as_secs_f64()
        );
    }
    println!(
        "\nThe sampler's overhead is orders of magnitude below complete\n\
         profiling at any practical interval — the trade the paper's §2\n\
         describes — but it cannot reconstruct VGV's time-lines. The\n\
         residual share error is systematic, not statistical: the 'truth'\n\
         comes from the Full run, whose probes inflate exactly the small\n\
         functions being measured (the perturbation the paper warns about)."
    );
}

fn study_probe_costs(json: bool) {
    let cpus = 8;
    let mut rows = Vec::new();
    for scale in [0.25, 0.5, 1.0, 2.0] {
        let mut machine = Machine::ibm_power3_colony();
        machine.probe.vt_begin_active = machine.probe.vt_begin_active.mul_f64(scale);
        machine.probe.vt_end_active = machine.probe.vt_end_active.mul_f64(scale);
        let run = |policy| {
            let app = smg98(cpus, Smg98Params::paper());
            run_session(
                &app,
                SessionConfig::new(machine.clone(), policy).with_seed(2),
            )
            .app_time
        };
        let full = run(Policy::Full);
        let none = run(Policy::None);
        rows.push((scale, full, none, full.as_secs_f64() / none.as_secs_f64()));
    }
    if json {
        let obj = Json::obj([
            ("study", "probe-costs".into()),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|&(s, f, n, r)| {
                            Json::obj([
                                ("active_pair_scale", s.into()),
                                ("full_s", f.as_secs_f64().into()),
                                ("none_s", n.as_secs_f64().into()),
                                ("ratio", r.into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", obj.pretty());
        return;
    }
    println!(
        "## Ablation: Fig 7(a) sensitivity to the active probe-pair cost (smg98, {cpus} CPUs)"
    );
    println!(
        "{:>8} {:>12} {:>12} {:>10}",
        "scale", "Full", "None", "ratio"
    );
    for (s, f, n, r) in rows {
        println!(
            "{s:>8.2} {:>12.2} {:>12.2} {r:>9.2}x",
            f.as_secs_f64(),
            n.as_secs_f64()
        );
    }
    println!("\nThe slowdown scales with probe cost; None is unaffected.");
}

fn study_daemon_jitter(json: bool) {
    let cpus = 16;
    let mut rows = Vec::new();
    for scale in [0.0, 1.0, 4.0] {
        let mut machine = Machine::ibm_power3_colony();
        machine.daemon.jitter = machine.daemon.jitter.mul_f64(scale);
        let app = dynprof_apps::test_app("smg98", cpus).unwrap();
        let report = run_session(
            &app,
            SessionConfig::new(machine, Policy::Dynamic).with_seed(2),
        );
        rows.push((scale, report.create_time, report.instrument_time));
    }
    if json {
        let obj = Json::obj([
            ("study", "daemon-jitter".into()),
            (
                "rows",
                Json::Arr(
                    rows.iter()
                        .map(|&(s, c, i)| {
                            Json::obj([
                                ("jitter_scale", s.into()),
                                ("create_s", c.as_secs_f64().into()),
                                ("instrument_s", i.as_secs_f64().into()),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]);
        println!("{}", obj.pretty());
        return;
    }
    println!("## Ablation: Fig 9 sensitivity to DPCL daemon jitter (smg98, {cpus} CPUs)");
    println!("{:>8} {:>12} {:>14}", "jitter", "create", "instrument");
    for (s, c, i) in rows {
        println!(
            "{s:>7.1}x {:>12.3} {:>14.3}",
            c.as_secs_f64(),
            i.as_secs_f64()
        );
    }
    println!("\nAsynchronous delivery inflates startup; the Fig 6 barrier\nprotocol keeps the application itself unskewed regardless.");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let study = args
        .iter()
        .position(|a| a == "--study")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    match study {
        "sampling" => study_sampling(json),
        "probe-costs" => study_probe_costs(json),
        "daemon-jitter" => study_daemon_jitter(json),
        "all" => {
            study_sampling(json);
            println!();
            study_probe_costs(json);
            println!();
            study_daemon_jitter(json);
        }
        other => {
            eprintln!("unknown study {other:?} (sampling|probe-costs|daemon-jitter)");
            std::process::exit(2);
        }
    }
}
