//! # dynprof-bench — experiment harnesses
//!
//! One runner per paper artefact:
//!
//! * [`fig7`] — execution time of the instrumented ASCI kernels under the
//!   five Table-3 policies (Fig 7 a–d);
//! * [`fig8a`]/[`fig8b`]/[`fig8c`] — `VT_confsync` costs: no-change vs
//!   change, statistics writing, and the IA32 cross-check (Fig 8 a–c);
//! * [`fig9`] — dynprof's time to create and instrument each application;
//! * table renderers for Tables 1–3.
//!
//! The binaries in `src/bin/` print the same rows/series the paper
//! reports, plus machine-readable JSON next to each table. Each binary
//! also accepts `--metrics <out.json>` (dump the [`dynprof_obs`] registry
//! after the sweep) and `fig7` accepts `--parallel [N]` (fan the
//! independent runs across a worker pool — see [`parallel`]).

#![warn(missing_docs)]

pub mod parallel;

use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use dynprof_apps::paper_app;
use dynprof_check::analyzer::{analyze, Budget, ProbePlan};
use dynprof_core::{run_session, AdaptiveSettings, AppSpec, SessionConfig, TxnSettings};
use dynprof_dpcl::DegradedPolicy;
use dynprof_mpi::{launch, JobSpec};
use dynprof_obs::{self as obs, Json};
use dynprof_sim::{Machine, OnlineStats, Sim, SimTime};
use dynprof_vt::{confsync, ConfigDelta, MonitorLink, Policy, VtConfig, VtLib, VtMpiHooks};

// ---------------------------------------------------------------------------
// Transactional-epoch mode (`--txn` / `--degraded-policy`)
// ---------------------------------------------------------------------------

/// Process-global transactional-epoch mode, set by the figure binaries:
/// 0 = off, 1 = abort-txn, 2 = exclude-node. A plain atomic (not a
/// `Mutex<Option<..>>`) so [`fig7_run`] workers can read it without
/// contention inside the parallel sweep.
static TXN_MODE: AtomicU8 = AtomicU8::new(0);

/// Route every subsequent session's instrumentation through the 2PC
/// control plane ([`dynprof_dpcl::InstrumentationTxn`]) with the given
/// degraded-mode policy; `None` restores the untransacted path.
pub fn set_txn_policy(policy: Option<DegradedPolicy>) {
    let v = match policy {
        None => 0,
        Some(DegradedPolicy::AbortTxn) => 1,
        Some(DegradedPolicy::ExcludeNode) => 2,
    };
    TXN_MODE.store(v, Ordering::SeqCst);
}

/// The currently configured transactional-epoch policy, if any.
pub fn txn_policy() -> Option<DegradedPolicy> {
    match TXN_MODE.load(Ordering::SeqCst) {
        1 => Some(DegradedPolicy::AbortTxn),
        2 => Some(DegradedPolicy::ExcludeNode),
        _ => None,
    }
}

/// Build the session's [`TxnSettings`] for `app`, wiring the
/// `dynprof-check` probe-safety analyzer in as the pre-flight validator
/// (the dependency inversion that keeps `dpcl` free of a `check` edge).
/// Returns `None` when transactional mode is off.
fn txn_settings(app: &AppSpec) -> Option<TxnSettings> {
    let policy = txn_policy()?;
    let program = app.name.clone();
    let manifest = app.functions.clone();
    let mut settings = TxnSettings::new(policy);
    settings.validator = Some(Arc::new(move |targets: &[String]| {
        let plan = ProbePlan::timer_pair(targets.to_vec());
        analyze(&program, &manifest, &plan, &Budget::default())
    }));
    Some(settings)
}

// ---------------------------------------------------------------------------
// Overhead-budget mode (`--overhead-budget`)
// ---------------------------------------------------------------------------

/// Process-global overhead budget in hundredths of a percent, set by the
/// figure binaries; `u64::MAX` means no budget. Same lock-free shape as
/// [`TXN_MODE`] so parallel sweep workers can read it without contention.
static BUDGET_PCT_X100: AtomicU64 = AtomicU64::new(u64::MAX);

/// Set (or clear) the overhead budget applied to every subsequent
/// session: the `vt::controller` closed loop deactivates probes at each
/// `VT_confsync` epoch until measured instrumentation overhead fits in
/// `pct` percent of application time. A budget of 100% or more is inert —
/// no controller is attached at all, so output stays byte-identical to an
/// unbudgeted run (the CI identity check relies on this).
pub fn set_overhead_budget(pct: Option<f64>) {
    let v = match pct {
        Some(p) if p >= 0.0 => (p * 100.0).round() as u64,
        _ => u64::MAX,
    };
    BUDGET_PCT_X100.store(v, Ordering::SeqCst);
}

/// The currently configured overhead budget (percent), if any.
pub fn overhead_budget() -> Option<f64> {
    match BUDGET_PCT_X100.load(Ordering::SeqCst) {
        u64::MAX => None,
        v => Some(v as f64 / 100.0),
    }
}

/// The session-level adaptive settings implied by the budget; `None` when
/// unset or inert (≥ 100%).
fn adaptive_settings() -> Option<AdaptiveSettings> {
    let pct = overhead_budget()?;
    (pct < 100.0).then(|| AdaptiveSettings::budget(pct))
}

/// Suffix a series label when any of its runs committed degraded
/// (exclude-node policy dropped participants), so figure output is never
/// silently mixed-provenance. Inert runs keep their exact labels, which
/// preserves the byte-identity goldens.
fn degraded_label(label: &str, degraded: bool) -> String {
    if degraded {
        format!("{label} [degraded]")
    } else {
        label.to_string()
    }
}

/// One measured series: a labelled curve over CPU counts.
#[derive(Clone, Debug)]
pub struct Series {
    /// Curve label (e.g. the policy name).
    pub label: String,
    /// `(cpus, seconds)` points.
    pub points: Vec<(usize, f64)>,
}

impl Series {
    /// The value at `cpus`, if measured.
    pub fn at(&self, cpus: usize) -> Option<f64> {
        self.points
            .iter()
            .find(|(c, _)| *c == cpus)
            .map(|&(_, v)| v)
    }
}

/// A figure: a titled set of series (one paper sub-plot).
#[derive(Clone, Debug)]
pub struct Figure {
    /// Figure identifier (e.g. "Fig 7(a) Smg98").
    pub title: String,
    /// Unit of the y axis.
    pub unit: &'static str,
    /// X-axis column label ("CPUs" for the paper figures, "Epoch" for
    /// the controller-convergence figure).
    pub xaxis: &'static str,
    /// The measured series.
    pub series: Vec<Series>,
}

impl Figure {
    /// Find a series by label.
    pub fn series(&self, label: &str) -> Option<&Series> {
        self.series.iter().find(|s| s.label == label)
    }

    /// Render as an aligned text table (CPU rows × series columns).
    pub fn render(&self) -> String {
        let mut cpus: Vec<usize> = self
            .series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(c, _)| c))
            .collect();
        cpus.sort_unstable();
        cpus.dedup();
        let mut out = format!("## {} ({})\n", self.title, self.unit);
        out.push_str(&format!("{:>6}", self.xaxis));
        for s in &self.series {
            out.push_str(&format!(" {:>12}", s.label));
        }
        out.push('\n');
        for c in cpus {
            out.push_str(&format!("{c:>6}"));
            for s in &self.series {
                match s.at(c) {
                    Some(v) => out.push_str(&format!(" {v:>12.4}")),
                    None => out.push_str(&format!(" {:>12}", "-")),
                }
            }
            out.push('\n');
        }
        out
    }

    /// Serialize to pretty-printed JSON. The writer ([`Json`]) is fully
    /// deterministic, so serial and parallel sweeps of the same figure
    /// produce byte-identical output.
    pub fn to_json(&self) -> String {
        Json::obj([
            ("title", self.title.as_str().into()),
            ("unit", self.unit.into()),
            (
                "series",
                Json::Arr(
                    self.series
                        .iter()
                        .map(|s| {
                            Json::obj([
                                ("label", s.label.as_str().into()),
                                (
                                    "points",
                                    Json::Arr(
                                        s.points
                                            .iter()
                                            .map(|&(c, v)| {
                                                Json::Arr(vec![c.into(), Json::Float(v)])
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
        .pretty()
    }
}

/// Write the global [`dynprof_obs`] registry as pretty JSON to `path`.
pub fn write_metrics(path: &str) -> std::io::Result<()> {
    std::fs::write(path, obs::dump_json() + "\n")
}

/// The CPU counts of paper Fig 7 for each application.
pub fn fig7_cpus(app: &str) -> Vec<usize> {
    match app {
        // "Data for a 1 processor run of Sweep3d was not collected"
        "sweep3d" => vec![2, 4, 8, 16, 32, 64],
        // OpenMP: one SMP node.
        "umt98" => vec![1, 2, 4, 8],
        _ => vec![1, 2, 4, 8, 16, 32, 64],
    }
}

/// The policies plotted for each application (Sweep3d has no `Subset`
/// version — paper §4.3 deemed it unnecessary).
pub fn fig7_policies(app: &str) -> Vec<Policy> {
    if app == "sweep3d" {
        vec![Policy::Full, Policy::FullOff, Policy::None, Policy::Dynamic]
    } else {
        vec![
            Policy::Full,
            Policy::FullOff,
            Policy::Subset,
            Policy::None,
            Policy::Dynamic,
        ]
    }
}

/// One independent Fig-7 run: `app` under `policy` at `cpus` processors,
/// with the exact seed the serial sweep has always used. Every run owns
/// its seeded engine, so runs can execute concurrently without affecting
/// each other's results.
pub fn fig7_run(app_name: &str, cpus: usize, policy: Policy) -> f64 {
    fig7_run_outcome(app_name, cpus, policy).0
}

/// [`fig7_run`] plus a degraded-mode marker: `true` when the run's
/// transactional epochs committed with excluded nodes (only possible with
/// `--txn`, an `exclude-node` policy, and a non-inert fault plan).
pub fn fig7_run_outcome(app_name: &str, cpus: usize, policy: Policy) -> (f64, bool) {
    let _span = obs::span("bench.fig7.run.real_ns");
    if obs::enabled() {
        obs::counter("bench.fig7.runs").inc();
    }
    let (app, _outputs) =
        paper_app(app_name, cpus).unwrap_or_else(|| panic!("unknown app {app_name}"));
    let mut cfg =
        SessionConfig::new(Machine::ibm_power3_colony(), policy).with_seed(1000 + cpus as u64);
    if let Some(settings) = txn_settings(&app) {
        cfg = cfg.with_txn(settings);
    }
    if let Some(settings) = adaptive_settings() {
        cfg = cfg.with_adaptive(settings);
    }
    let report = run_session(&app, cfg);
    (report.app_time.as_secs_f64(), report.vt.is_degraded())
}

/// Reproduce one sub-plot of Fig 7: run `app` under every policy across
/// the paper's CPU counts on the IBM machine model, serially.
pub fn fig7(app_name: &str) -> Figure {
    fig7_with_workers(app_name, 1)
}

/// [`fig7`] with its independent (cpus × policy) runs fanned across
/// `workers` threads. Results are assembled in the serial sweep's order,
/// and each run is seed-deterministic, so the output — down to the JSON
/// bytes — is identical to the serial runner's.
pub fn fig7_with_workers(app_name: &str, workers: usize) -> Figure {
    let cpus = fig7_cpus(app_name);
    let policies = fig7_policies(app_name);
    let mut series: Vec<Series> = policies
        .iter()
        .map(|p| Series {
            label: p.label().to_string(),
            points: Vec::new(),
        })
        .collect();
    // Jobs in the serial sweep's iteration order: outer CPUs, inner policy.
    let jobs: Vec<(usize, usize)> = cpus
        .iter()
        .flat_map(|&c| (0..policies.len()).map(move |si| (c, si)))
        .collect();
    let results = parallel::run(&jobs, workers, |&(c, si)| {
        fig7_run_outcome(app_name, c, policies[si])
    });
    let mut degraded = vec![false; series.len()];
    for (&(c, si), (t, deg)) in jobs.iter().zip(results) {
        series[si].points.push((c, t));
        degraded[si] |= deg;
    }
    for (s, deg) in series.iter_mut().zip(degraded) {
        s.label = degraded_label(&s.label, deg);
    }
    let sub = match app_name {
        "smg98" => "a",
        "sppm" => "b",
        "sweep3d" => "c",
        "umt98" => "d",
        _ => "?",
    };
    Figure {
        title: format!("Fig 7({sub}) {app_name}: execution time of instrumented versions"),
        unit: "seconds",
        xaxis: "CPUs",
        series,
    }
}

// ---------------------------------------------------------------------------
// Fig 8: VT_confsync
// ---------------------------------------------------------------------------

/// Which Fig 8 experiment to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConfsyncExperiment {
    /// Experiment 1: `VT_confsync` with no configuration change.
    NoChange,
    /// Experiment 2: with a configuration change posted.
    WithChange,
    /// Experiment 3: writing runtime statistics.
    WriteStats,
}

/// Measure the cost of one `VT_confsync` at rank 0, averaged over `runs`
/// seeds, for each processor count.
pub fn confsync_cost(
    machine: &Machine,
    procs: &[usize],
    experiment: ConfsyncExperiment,
    runs: usize,
) -> Series {
    confsync_cost_with_workers(machine, procs, experiment, runs, 1)
}

/// [`confsync_cost`] with its independent (proc count × seed) runs fanned
/// across `workers` threads. Each run owns its own seeded engine and the
/// per-point averages are folded in the serial sweep's run order, so the
/// resulting series is byte-identical to the serial one.
pub fn confsync_cost_with_workers(
    machine: &Machine,
    procs: &[usize],
    experiment: ConfsyncExperiment,
    runs: usize,
    workers: usize,
) -> Series {
    let label = match experiment {
        ConfsyncExperiment::NoChange => "No Change",
        ConfsyncExperiment::WithChange => "Changes",
        ConfsyncExperiment::WriteStats => "Write Stats",
    };
    // Jobs in the serial sweep's order: outer proc count, inner seed.
    let jobs: Vec<(usize, u64)> = procs
        .iter()
        .flat_map(|&p| (0..runs).map(move |run| (p, 0xF160 + run as u64)))
        .collect();
    let results = parallel::run(&jobs, workers, |&(p, seed)| {
        one_confsync(machine, p, experiment, seed)
    });
    let mut points = Vec::new();
    for (pi, &p) in procs.iter().enumerate() {
        let mut stats = OnlineStats::new();
        for &t in &results[pi * runs..(pi + 1) * runs] {
            stats.push_time(t);
        }
        points.push((p, stats.mean()));
    }
    Series {
        label: label.into(),
        points,
    }
}

fn one_confsync(
    machine: &Machine,
    ranks: usize,
    experiment: ConfsyncExperiment,
    seed: u64,
) -> SimTime {
    let vt = VtLib::new("confsync-probe", ranks, VtConfig::all_on(), machine.probe);
    let monitor = MonitorLink::new();
    if experiment == ConfsyncExperiment::WithChange {
        monitor.post_change(
            ConfigDelta::Set(vec![("default".into(), false), ("solve_*".into(), true)]),
            // The tool applies the edit programmatically here; the paper's
            // point is that the *sync* is cheap compared to the human.
            SimTime::from_micros(500),
        );
    }
    let sim = Sim::virtual_time(machine.clone(), seed);
    let cost = Arc::new(Mutex::new(SimTime::ZERO));
    let (vt2, m2, c2) = (Arc::clone(&vt), Arc::clone(&monitor), Arc::clone(&cost));
    let write_stats = experiment == ConfsyncExperiment::WriteStats;
    launch(
        &sim,
        JobSpec::new("confsync-probe", ranks),
        vec![VtMpiHooks::new(Arc::clone(&vt))],
        move |p, comm| {
            comm.init(p);
            // Populate statistics so Experiment 3 has data to write
            // (16 instrumented functions with activity per rank).
            for i in 0..16 {
                let f = vt2.funcdef(p, &format!("kernel_{i}"));
                vt2.begin(p, comm.rank(), 0, f, 1);
                p.advance(SimTime::from_micros(30));
                vt2.end(p, comm.rank(), 0, f);
            }
            comm.barrier(p);
            let t0 = p.now();
            confsync(&vt2, &m2, p, comm, write_stats);
            if comm.rank() == 0 {
                *c2.lock() = p.now() - t0;
            }
            comm.finalize(p);
        },
    );
    sim.run();
    let t = *cost.lock();
    t
}

/// Reproduce Fig 8(a): confsync on the IBM machine, 2–512 processors.
pub fn fig8a(runs: usize) -> Figure {
    fig8a_with_workers(runs, 1)
}

/// [`fig8a`] with its runs fanned across `workers` threads
/// (byte-identical output; see [`confsync_cost_with_workers`]).
pub fn fig8a_with_workers(runs: usize, workers: usize) -> Figure {
    let m = Machine::ibm_power3_colony();
    let procs = [2, 4, 8, 16, 32, 64, 128, 256, 512];
    Figure {
        title: "Fig 8(a) VT_confsync on IBM (no change vs changes)".into(),
        unit: "seconds",
        xaxis: "CPUs",
        series: vec![
            confsync_cost_with_workers(&m, &procs, ConfsyncExperiment::NoChange, runs, workers),
            confsync_cost_with_workers(&m, &procs, ConfsyncExperiment::WithChange, runs, workers),
        ],
    }
}

/// Reproduce Fig 8(b): confsync writing statistics on the IBM machine.
pub fn fig8b(runs: usize) -> Figure {
    fig8b_with_workers(runs, 1)
}

/// [`fig8b`] with its runs fanned across `workers` threads
/// (byte-identical output; see [`confsync_cost_with_workers`]).
pub fn fig8b_with_workers(runs: usize, workers: usize) -> Figure {
    let m = Machine::ibm_power3_colony();
    let procs = [2, 4, 8, 16, 32, 64, 128, 256, 512];
    Figure {
        title: "Fig 8(b) VT_confsync writing statistics on IBM".into(),
        unit: "seconds",
        xaxis: "CPUs",
        series: vec![confsync_cost_with_workers(
            &m,
            &procs,
            ConfsyncExperiment::WriteStats,
            runs,
            workers,
        )],
    }
}

/// Reproduce Fig 8(c): confsync on the IA32 Pentium III cluster.
pub fn fig8c(runs: usize) -> Figure {
    fig8c_with_workers(runs, 1)
}

/// [`fig8c`] with its runs fanned across `workers` threads
/// (byte-identical output; see [`confsync_cost_with_workers`]).
pub fn fig8c_with_workers(runs: usize, workers: usize) -> Figure {
    let m = Machine::ia32_pentium3_cluster();
    let procs: Vec<usize> = (2..=16).collect();
    Figure {
        title: "Fig 8(c) VT_confsync on IA32 (no change)".into(),
        unit: "seconds",
        xaxis: "CPUs",
        series: vec![confsync_cost_with_workers(
            &m,
            &procs,
            ConfsyncExperiment::NoChange,
            runs,
            workers,
        )],
    }
}

// ---------------------------------------------------------------------------
// Fig 9: time to create and instrument
// ---------------------------------------------------------------------------

/// Reproduce Fig 9: dynprof's time to create + instrument each kernel.
///
/// The metric is independent of the modelled computation (the target is
/// suspended throughout), so the kernels run with test-scale bodies.
pub fn fig9() -> Figure {
    fig9_with_workers(1)
}

/// [`fig9`] with its independent (app × CPU count) sessions fanned across
/// `workers` threads. Each session owns its own seeded engine; results
/// are assembled in the serial sweep's order, so the output is
/// byte-identical to the serial runner's.
pub fn fig9_with_workers(workers: usize) -> Figure {
    let apps = ["smg98", "sppm", "sweep3d", "umt98"];
    // Jobs in the serial sweep's order: outer app, inner CPU count.
    let jobs: Vec<(usize, usize)> = apps
        .iter()
        .enumerate()
        .flat_map(|(ai, &a)| fig7_cpus(a).into_iter().map(move |c| (ai, c)))
        .collect();
    let results = parallel::run(&jobs, workers, |&(ai, c)| {
        let app = dynprof_apps::test_app(apps[ai], c).expect("app");
        let mut cfg = SessionConfig::new(Machine::ibm_power3_colony(), Policy::Dynamic)
            .with_seed(77 + c as u64);
        if let Some(settings) = txn_settings(&app) {
            cfg = cfg.with_txn(settings);
        }
        if let Some(settings) = adaptive_settings() {
            cfg = cfg.with_adaptive(settings);
        }
        let report = run_session(&app, cfg);
        (
            c,
            report.create_and_instrument().as_secs_f64(),
            report.vt.is_degraded(),
        )
    });
    let mut series = Vec::new();
    let mut idx = 0;
    for app_name in apps {
        let n = fig7_cpus(app_name).len();
        let mut points = Vec::new();
        let mut degraded = false;
        for &(c, t, deg) in &results[idx..idx + n] {
            points.push((c, t));
            degraded |= deg;
        }
        idx += n;
        series.push(Series {
            label: degraded_label(app_name, degraded),
            points,
        });
    }
    Figure {
        title: "Fig 9 Time to create and instrument".into(),
        unit: "seconds",
        xaxis: "CPUs",
        series,
    }
}

// ---------------------------------------------------------------------------
// Controller convergence (overhead vs budget)
// ---------------------------------------------------------------------------

/// The budgets swept by [`fig_controller`]; `INFINITY` is the unbudgeted
/// observer baseline.
pub const CONTROLLER_BUDGETS: [f64; 4] = [2.0, 5.0, 10.0, f64::INFINITY];

/// One adaptive sweep3d session for the convergence figure: 4 ranks on
/// the test machine, probe-dense scaling (tiny per-cell work, one KBA
/// plane per block), one confsync epoch per flux iteration. Returns the
/// controller's measured-overhead series, one point per epoch.
pub fn controller_convergence_run(budget_pct: f64, epochs: usize) -> Vec<f64> {
    let params = dynprof_apps::Sweep3dParams {
        global_n: 16,
        k_block: 1,
        angle_groups: 4,
        iterations: epochs,
        omp_threads: 1,
        scale: 0.001,
        outputs: dynprof_apps::workload::Outputs::new(),
    };
    let settings = if budget_pct.is_finite() {
        AdaptiveSettings::budget(budget_pct)
    } else {
        AdaptiveSettings::observer()
    };
    let cfg = SessionConfig::new(Machine::test_machine(), Policy::Full)
        .with_seed(42)
        .with_adaptive(settings);
    let report = run_session(&dynprof_apps::sweep3d(4, params), cfg);
    report
        .controller
        .expect("adaptive session attaches a controller")
        .measured_series()
}

/// The closed-loop figure: measured instrumentation overhead per confsync
/// epoch for each budget in [`CONTROLLER_BUDGETS`], on the probe-dense
/// sweep3d scaling. The unbudgeted series holds its ~12% plateau; every
/// budgeted series steps down as the controller deactivates hot-cheap
/// probes, converging within a few epochs (re-probe excursions show as
/// one-epoch spikes that are immediately re-suppressed).
pub fn fig_controller(epochs: usize) -> Figure {
    let series = CONTROLLER_BUDGETS
        .iter()
        .map(|&b| {
            let label = if b.is_finite() {
                format!("budget {b}%")
            } else {
                "unbudgeted".to_string()
            };
            Series {
                label,
                points: controller_convergence_run(b, epochs)
                    .into_iter()
                    .enumerate()
                    .collect(),
            }
        })
        .collect();
    Figure {
        title: "Adaptive controller: measured overhead per confsync epoch (sweep3d, 4 ranks)"
            .into(),
        unit: "% of application time",
        xaxis: "Epoch",
        series,
    }
}

// ---------------------------------------------------------------------------
// Tables
// ---------------------------------------------------------------------------

/// Render paper Table 1 (the dynprof command set).
pub fn table1() -> String {
    let mut out = String::from("## Table 1: commands accepted by the dynprof tool\n");
    out.push_str(dynprof_core::HELP_TEXT);
    out
}

/// Render paper Table 2 (the ASCI kernel applications).
pub fn table2() -> String {
    let mut out = String::from("## Table 2: the ASCI kernel applications\n");
    out.push_str(&format!(
        "{:<10} {:<10} {}\n",
        "App", "Type/Lang", "Description"
    ));
    for (name, kind, desc) in dynprof_apps::table2() {
        out.push_str(&format!("{name:<10} {kind:<10} {desc}\n"));
    }
    out
}

/// Render paper Table 3 (the instrumentation policies).
pub fn table3() -> String {
    let mut out = String::from("## Table 3: the instrumentation policies\n");
    out.push_str(&format!("{:<10} {}\n", "Policy", "Description"));
    for p in dynprof_vt::ALL_POLICIES {
        out.push_str(&format!("{:<10} {}\n", p.label(), p.description()));
    }
    out
}
