//! engine_bench — raw throughput of the virtual-time discrete-event
//! engine, in events per second of host time.
//!
//! Four workloads stress the scheduler hot loop in different shapes:
//!
//! * **pingpong** — two processes exchanging messages through a pair of
//!   channels: the pure handoff cost, one blocking receive per event;
//! * **alltoall** — 16 processes each sending to every other with
//!   jittered latencies: deep event queue, cross-process wakes;
//! * **barrier_storm** — 32 processes spinning on a cyclic barrier:
//!   bursts of simultaneous wakes at one release time;
//! * **reconfig_wave** — 16 processes riding confsync-style epochs: rank
//!   0 fans a table out through per-rank channels, gathers acks, and a
//!   barrier releases the next epoch — the shape the adaptive
//!   controller's activation broadcasts travel on.
//!
//! Every workload is a fixed-size simulation (so its event count is
//! deterministic); the best wall-clock of five samples divides it into
//! events/sec. Results are written as machine-readable JSON to
//! `BENCH_engine.json` at the workspace root (override with
//! `BENCH_ENGINE_OUT=<path>`), seeding the repository's performance
//! trajectory.
//!
//! Regression gate (the CI `perf-smoke` job): set
//! `PERF_BASELINE=<path-to-committed-BENCH_engine.json>` and the bench
//! exits nonzero if any workload's events/sec fell more than
//! `PERF_SMOKE_TOLERANCE` (default `0.30`, i.e. 30%) below the baseline.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynprof_obs::Json;
use dynprof_sim::sync::{SimBarrier, SimChannel};
use dynprof_sim::{Machine, Sim, SimTime};

/// One measured workload: deterministic event count, best host time.
struct Measure {
    name: &'static str,
    events: u64,
    best: Duration,
    /// Handoffs actually paid: direct (one OS-thread switch) count one,
    /// scheduler fallbacks (two switches, the hub-and-spoke price) count
    /// two. The hub-and-spoke equivalent is `2 * events`.
    handoffs: u64,
}

impl Measure {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best.as_secs_f64()
    }
}

/// Run `build` (which constructs and runs one simulation, returning its
/// stats handle) five times; keep the deterministic event count and the
/// best wall time.
fn sample(name: &'static str, build: impl Fn() -> (u64, u64, Duration)) -> Measure {
    let mut best = Duration::MAX;
    let mut events = 0;
    let mut handoffs = 0;
    for _ in 0..5 {
        let (ev, ho, wall) = build();
        events = ev;
        handoffs = ho;
        best = best.min(wall);
    }
    Measure {
        name,
        events,
        best,
        handoffs,
    }
}

/// Run one constructed simulation, returning (events, handoffs, wall).
fn timed_run(sim: Sim) -> (u64, u64, Duration) {
    let stats = sim.stats();
    let t = Instant::now();
    sim.run();
    let wall = t.elapsed();
    (
        stats.events_dispatched(),
        stats.direct_handoffs() + 2 * stats.sched_fallbacks(),
        wall,
    )
}

/// Two processes ping-ponging `rounds` messages through two channels.
fn pingpong(rounds: u32) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time(Machine::test_machine(), 1);
    let ch_a: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let ch_b: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
    sim.spawn("ping", 0, move |p| {
        for i in 0..rounds {
            a1.send(p, i, SimTime::from_micros(1));
            let _ = b1.recv(p);
        }
    });
    let (a2, b2) = (ch_a, ch_b);
    sim.spawn("pong", 1, move |p| {
        for _ in 0..rounds {
            let v = a2.recv(p);
            b2.send(p, v, SimTime::from_micros(1));
        }
    });
    timed_run(sim)
}

/// `n` processes; every round each sends one jittered message to every
/// other process's mailbox, then drains `n - 1` receipts.
fn alltoall(n: usize, rounds: usize) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time(Machine::test_machine(), 2);
    let chans: Vec<Arc<SimChannel<u32>>> = (0..n).map(|_| Arc::new(SimChannel::new())).collect();
    for i in 0..n {
        let chans = chans.clone();
        sim.spawn(format!("a2a{i}"), i % 4, move |p| {
            for _ in 0..rounds {
                for (j, ch) in chans.iter().enumerate() {
                    if j != i {
                        let lat =
                            SimTime::from_nanos(500 + p.jitter(SimTime::from_micros(2)).as_nanos());
                        ch.send(p, i as u32, lat);
                    }
                }
                for _ in 0..n - 1 {
                    let _ = chans[i].recv(p);
                }
            }
        });
    }
    timed_run(sim)
}

/// `n` processes hammering one cyclic barrier for `rounds` episodes with
/// jittered arrival skew.
fn barrier_storm(n: usize, rounds: usize) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time(Machine::test_machine(), 3);
    let bar = Arc::new(SimBarrier::new(n, SimTime::from_nanos(200)));
    for i in 0..n {
        let bar = Arc::clone(&bar);
        sim.spawn(format!("storm{i}"), i % 4, move |p| {
            for _ in 0..rounds {
                let skew = p.jitter(SimTime::from_micros(1));
                p.advance(skew + SimTime::from_nanos(1));
                bar.wait(p);
            }
        });
    }
    timed_run(sim)
}

/// `n` processes sweeping `rounds` confsync-style reconfiguration waves:
/// rank 0 broadcasts through per-rank channels, drains one ack per peer,
/// and a barrier releases everyone into the next epoch.
fn reconfig_wave(n: usize, rounds: usize) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time(Machine::test_machine(), 4);
    let down: Vec<Arc<SimChannel<u32>>> = (0..n).map(|_| Arc::new(SimChannel::new())).collect();
    let up: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let bar = Arc::new(SimBarrier::new(n, SimTime::from_nanos(200)));
    for i in 0..n {
        let down = down.clone();
        let up = Arc::clone(&up);
        let bar = Arc::clone(&bar);
        sim.spawn(format!("wave{i}"), i % 4, move |p| {
            for round in 0..rounds {
                if i == 0 {
                    for ch in down.iter().skip(1) {
                        ch.send(p, round as u32, SimTime::from_micros(1));
                    }
                    for _ in 1..n {
                        let _ = up.recv(p);
                    }
                } else {
                    let v = down[i].recv(p);
                    up.send(p, v, SimTime::from_micros(1));
                }
                bar.wait(p);
            }
        });
    }
    timed_run(sim)
}

fn out_path() -> String {
    std::env::var("BENCH_ENGINE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR")))
}

fn to_json(measures: &[Measure]) -> String {
    Json::obj([
        ("schema", "dynprof-engine-bench/v1".into()),
        (
            "workloads",
            Json::Obj(
                measures
                    .iter()
                    .map(|m| {
                        (
                            m.name.to_string(),
                            Json::obj([
                                ("events", Json::UInt(m.events)),
                                ("handoffs", Json::UInt(m.handoffs)),
                                ("best_ns", Json::UInt(m.best.as_nanos() as u64)),
                                ("events_per_sec", Json::Float(m.events_per_sec())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty()
}

/// Pull `workloads.<name>.events_per_sec` out of a baseline JSON dump
/// without a JSON parser: scan for the workload key, then the field.
fn baseline_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let tail = &json[start..];
    let field = tail.find("\"events_per_sec\":")?;
    let num = tail[field + "\"events_per_sec\":".len()..]
        .trim_start()
        .split([',', '}', '\n'])
        .next()?
        .trim();
    num.parse().ok()
}

fn main() {
    println!("engine_bench: virtual-time engine throughput (best of 5)\n");
    let measures = [
        sample("pingpong", || pingpong(20_000)),
        sample("alltoall", || alltoall(16, 60)),
        sample("barrier_storm", || barrier_storm(32, 1_500)),
        sample("reconfig_wave", || reconfig_wave(16, 600)),
    ];
    for m in &measures {
        println!(
            "{:<14} {:>9} events in {:>9.3} ms  ->  {:>12.0} events/sec  ({} handoffs, hub-equiv {})",
            m.name,
            m.events,
            m.best.as_secs_f64() * 1e3,
            m.events_per_sec(),
            m.handoffs,
            2 * m.events,
        );
    }

    let path = out_path();
    let json = to_json(&measures);
    match std::fs::write(&path, json.clone() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Soft regression gate against a committed baseline (CI perf-smoke).
    if let Ok(baseline_path) = std::env::var("PERF_BASELINE") {
        let tolerance: f64 = std::env::var("PERF_SMOKE_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.30);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read PERF_BASELINE {baseline_path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for m in &measures {
            match baseline_events_per_sec(&baseline, m.name) {
                Some(base) => {
                    let floor = base * (1.0 - tolerance);
                    let now = m.events_per_sec();
                    let verdict = if now < floor { "REGRESSED" } else { "ok" };
                    println!(
                        "perf-smoke {:<14} baseline {:>12.0}  now {:>12.0}  floor {:>12.0}  {}",
                        m.name, base, now, floor, verdict
                    );
                    failed |= now < floor;
                }
                None => println!("perf-smoke {:<14} no baseline entry; skipped", m.name),
            }
        }
        if failed {
            eprintln!(
                "perf-smoke: events/sec regressed more than {:.0}% below baseline",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
