//! engine_bench — raw throughput of the virtual-time discrete-event
//! engine, in events per second of host time, measured on **both**
//! process backends.
//!
//! Five workloads stress the scheduler hot loop in different shapes:
//!
//! * **pingpong** — two processes exchanging messages through a pair of
//!   channels: the pure handoff cost, one blocking receive per event;
//! * **alltoall** — 16 processes each sending to every other with
//!   jittered latencies: deep event queue, cross-process wakes;
//! * **barrier_storm** — 32 processes spinning on a cyclic barrier:
//!   bursts of simultaneous wakes at one release time;
//! * **reconfig_wave** — 16 processes riding confsync-style epochs: rank
//!   0 fans a table out through per-rank channels, gathers acks, and a
//!   barrier releases the next epoch — the shape the adaptive
//!   controller's activation broadcasts travel on;
//! * **fig7_sweep3d_144x8** — the paper-scale shape (§6, Fig 7c): 1152
//!   ranks on the 144-node × 8-CPU Power3 colony running KBA wavefront
//!   sweeps (recv west/north, compute, send east/south, reverse, sync) —
//!   the workload ROADMAP item 1 wants at interactive speed.
//!
//! Each workload runs once per backend: `threads` (one OS thread per sim
//! process — the PR 5 engine, kept as the differential oracle) and
//! `coroutine` (stack-swapped green tasks on the driving thread — the
//! default since the threadless rewrite). Every workload is a fixed-size
//! simulation (so its event count is deterministic); the best wall-clock
//! of five samples divides it into events/sec. Results are written as
//! machine-readable JSON to `BENCH_engine.json` at the workspace root
//! (override with `BENCH_ENGINE_OUT=<path>`): bare-named rows are the
//! threads backend (the schema-v1 names, so historical rows stay
//! comparable), `<name>_coroutine` rows are the coroutine backend.
//!
//! Regression gate (the CI `perf-smoke` job): set
//! `PERF_BASELINE=<path-to-committed-BENCH_engine.json>` and the bench
//! exits nonzero if any **coroutine** workload's events/sec fell more
//! than `PERF_SMOKE_TOLERANCE` (default `0.30`, i.e. 30%) below the
//! baseline. Threads rows are compared and printed but never fail the
//! gate — that backend is a correctness oracle, not a perf target, and
//! gating it would make the job flaky on loaded runners.

use std::sync::Arc;
use std::time::{Duration, Instant};

use dynprof_obs::Json;
use dynprof_sim::sync::{SimBarrier, SimChannel};
use dynprof_sim::{Machine, ProcBackend, Sim, SimTime};

/// One measured workload on one backend.
struct Measure {
    name: &'static str,
    backend: ProcBackend,
    events: u64,
    best: Duration,
    /// Handoffs actually paid: direct (one switch — futex pair on
    /// threads, stack swap on coroutine) count one, scheduler fallbacks
    /// (two switches, the hub-and-spoke price) count two. The
    /// hub-and-spoke equivalent is `2 * events`.
    handoffs: u64,
}

impl Measure {
    fn events_per_sec(&self) -> f64 {
        self.events as f64 / self.best.as_secs_f64()
    }

    /// Row key in the JSON output: bare name for threads (schema-v1
    /// compatible), `_coroutine` suffix otherwise.
    fn key(&self) -> String {
        match self.backend {
            ProcBackend::Threads => self.name.to_string(),
            ProcBackend::Coroutine => format!("{}_coroutine", self.name),
        }
    }
}

/// Run `build` five times on `backend`; keep the deterministic event
/// count and the best wall time.
fn sample(
    name: &'static str,
    backend: ProcBackend,
    build: impl Fn(ProcBackend) -> (u64, u64, Duration),
) -> Measure {
    let mut best = Duration::MAX;
    let mut events = 0;
    let mut handoffs = 0;
    for _ in 0..5 {
        let (ev, ho, wall) = build(backend);
        events = ev;
        handoffs = ho;
        best = best.min(wall);
    }
    Measure {
        name,
        backend,
        events,
        best,
        handoffs,
    }
}

/// Run one constructed simulation, returning (events, handoffs, wall).
fn timed_run(sim: Sim) -> (u64, u64, Duration) {
    let stats = sim.stats();
    let t = Instant::now();
    sim.run();
    let wall = t.elapsed();
    (
        stats.events_dispatched(),
        stats.direct_handoffs() + 2 * stats.sched_fallbacks(),
        wall,
    )
}

/// Two processes ping-ponging `rounds` messages through two channels.
fn pingpong(rounds: u32, backend: ProcBackend) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), 1, backend);
    let ch_a: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let ch_b: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
    sim.spawn("ping", 0, move |p| {
        for i in 0..rounds {
            a1.send(p, i, SimTime::from_micros(1));
            let _ = b1.recv(p);
        }
    });
    let (a2, b2) = (ch_a, ch_b);
    sim.spawn("pong", 1, move |p| {
        for _ in 0..rounds {
            let v = a2.recv(p);
            b2.send(p, v, SimTime::from_micros(1));
        }
    });
    timed_run(sim)
}

/// `n` processes; every round each sends one jittered message to every
/// other process's mailbox, then drains `n - 1` receipts.
fn alltoall(n: usize, rounds: usize, backend: ProcBackend) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), 2, backend);
    let chans: Vec<Arc<SimChannel<u32>>> = (0..n).map(|_| Arc::new(SimChannel::new())).collect();
    for i in 0..n {
        let chans = chans.clone();
        sim.spawn(format!("a2a{i}"), i % 4, move |p| {
            for _ in 0..rounds {
                for (j, ch) in chans.iter().enumerate() {
                    if j != i {
                        let lat =
                            SimTime::from_nanos(500 + p.jitter(SimTime::from_micros(2)).as_nanos());
                        ch.send(p, i as u32, lat);
                    }
                }
                for _ in 0..n - 1 {
                    let _ = chans[i].recv(p);
                }
            }
        });
    }
    timed_run(sim)
}

/// `n` processes hammering one cyclic barrier for `rounds` episodes with
/// jittered arrival skew.
fn barrier_storm(n: usize, rounds: usize, backend: ProcBackend) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), 3, backend);
    let bar = Arc::new(SimBarrier::new(n, SimTime::from_nanos(200)));
    for i in 0..n {
        let bar = Arc::clone(&bar);
        sim.spawn(format!("storm{i}"), i % 4, move |p| {
            for _ in 0..rounds {
                let skew = p.jitter(SimTime::from_micros(1));
                p.advance(skew + SimTime::from_nanos(1));
                bar.wait(p);
            }
        });
    }
    timed_run(sim)
}

/// `n` processes sweeping `rounds` confsync-style reconfiguration waves:
/// rank 0 broadcasts through per-rank channels, drains one ack per peer,
/// and a barrier releases everyone into the next epoch.
fn reconfig_wave(n: usize, rounds: usize, backend: ProcBackend) -> (u64, u64, Duration) {
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), 4, backend);
    let down: Vec<Arc<SimChannel<u32>>> = (0..n).map(|_| Arc::new(SimChannel::new())).collect();
    let up: Arc<SimChannel<u32>> = Arc::new(SimChannel::new());
    let bar = Arc::new(SimBarrier::new(n, SimTime::from_nanos(200)));
    for i in 0..n {
        let down = down.clone();
        let up = Arc::clone(&up);
        let bar = Arc::clone(&bar);
        sim.spawn(format!("wave{i}"), i % 4, move |p| {
            for round in 0..rounds {
                if i == 0 {
                    for ch in down.iter().skip(1) {
                        ch.send(p, round as u32, SimTime::from_micros(1));
                    }
                    for _ in 1..n {
                        let _ = up.recv(p);
                    }
                } else {
                    let v = down[i].recv(p);
                    up.send(p, v, SimTime::from_micros(1));
                }
                bar.wait(p);
            }
        });
    }
    timed_run(sim)
}

/// The paper-scale workload: 1152 ranks (144 nodes × 8 CPUs, the §6
/// Power3 colony) on a 36×32 KBA process grid, sweeping `iters`
/// wavefront pairs. Each rank blocks on its west and north inflows,
/// "computes" a plane (a virtual-time advance), forwards east and south,
/// then the whole grid reverses direction — the dependency pattern of
/// sweep3d's pipelined wavefronts, which serializes into long dependence
/// chains and is exactly the shape where per-event scheduler overhead
/// dominates a simulation at scale.
fn fig7_sweep3d_144x8(iters: usize, backend: ProcBackend) -> (u64, u64, Duration) {
    const PX: usize = 36;
    const PY: usize = 32; // PX * PY = 1152 ranks on 144 nodes x 8 CPUs
    let machine = Machine::ibm_power3_colony();
    let nodes = machine.nodes;
    let sim = Sim::virtual_time_with_backend(machine, 5, backend);
    // chans[dir][rank]: dir 0 = eastward flow (recv from west), dir 1 =
    // southward, dir 2/3 the reversed sweep.
    let chans: Vec<Vec<Arc<SimChannel<u8>>>> = (0..4)
        .map(|_| (0..PX * PY).map(|_| Arc::new(SimChannel::new())).collect())
        .collect();
    let bar = Arc::new(SimBarrier::new(PX * PY, SimTime::from_nanos(400)));
    for py in 0..PY {
        for px in 0..PX {
            let rank = py * PX + px;
            // Capture only this rank's own inflows and its neighbours'
            // inflows (at most eight Arcs): the benchmark must measure
            // the scheduler, not refcount churn on 4x1152 channel
            // handles per process.
            let in_w = (px > 0).then(|| Arc::clone(&chans[0][rank]));
            let in_n = (py > 0).then(|| Arc::clone(&chans[1][rank]));
            let out_e = (px + 1 < PX).then(|| Arc::clone(&chans[0][rank + 1]));
            let out_s = (py + 1 < PY).then(|| Arc::clone(&chans[1][rank + PX]));
            let rin_e = (px + 1 < PX).then(|| Arc::clone(&chans[2][rank]));
            let rin_s = (py + 1 < PY).then(|| Arc::clone(&chans[3][rank]));
            let rout_w = (px > 0).then(|| Arc::clone(&chans[2][rank - 1]));
            let rout_n = (py > 0).then(|| Arc::clone(&chans[3][rank - PX]));
            let bar = Arc::clone(&bar);
            sim.spawn(format!("sweep{rank}"), rank / 8 % nodes, move |p| {
                let lat = SimTime::from_nanos(1_500); // one KBA block face
                let compute = SimTime::from_nanos(800 + (rank as u64 % 7) * 50);
                for _ in 0..iters {
                    // Forward octant: wavefront from the north-west corner.
                    if let Some(ch) = &in_w {
                        let _ = ch.recv(p);
                    }
                    if let Some(ch) = &in_n {
                        let _ = ch.recv(p);
                    }
                    p.advance(compute);
                    if let Some(ch) = &out_e {
                        ch.send(p, 0, lat);
                    }
                    if let Some(ch) = &out_s {
                        ch.send(p, 0, lat);
                    }
                    // Reverse octant: wavefront from the south-east corner.
                    if let Some(ch) = &rin_e {
                        let _ = ch.recv(p);
                    }
                    if let Some(ch) = &rin_s {
                        let _ = ch.recv(p);
                    }
                    p.advance(compute);
                    if let Some(ch) = &rout_w {
                        ch.send(p, 0, lat);
                    }
                    if let Some(ch) = &rout_n {
                        ch.send(p, 0, lat);
                    }
                    // Iteration boundary: the solver's convergence check.
                    bar.wait(p);
                }
            });
        }
    }
    timed_run(sim)
}

fn out_path() -> String {
    std::env::var("BENCH_ENGINE_OUT")
        .unwrap_or_else(|_| format!("{}/../../BENCH_engine.json", env!("CARGO_MANIFEST_DIR")))
}

/// Which backends to measure: `BENCH_ENGINE_BACKENDS` is a comma/space
/// list of `threads`/`coroutine` (default: both). `scripts/profile_pipeline.sh`
/// uses this to run one backend at a time under `perf`/`strace` so samples
/// are attributable; the cross-backend event-count check and the JSON dump
/// are skipped for restricted runs.
fn backends_under_test() -> Vec<ProcBackend> {
    let Ok(raw) = std::env::var("BENCH_ENGINE_BACKENDS") else {
        return vec![ProcBackend::Threads, ProcBackend::Coroutine];
    };
    let picked: Vec<ProcBackend> = raw
        .split([',', ' '])
        .filter(|s| !s.is_empty())
        .map(|s| match s {
            "threads" => ProcBackend::Threads,
            "coroutine" => ProcBackend::Coroutine,
            other => {
                eprintln!("BENCH_ENGINE_BACKENDS: unknown backend {other:?}");
                std::process::exit(2);
            }
        })
        .collect();
    if picked.is_empty() {
        eprintln!("BENCH_ENGINE_BACKENDS set but names no backend");
        std::process::exit(2);
    }
    picked
}

fn to_json(measures: &[Measure]) -> String {
    Json::obj([
        ("schema", "dynprof-engine-bench/v2".into()),
        (
            "workloads",
            Json::Obj(
                measures
                    .iter()
                    .map(|m| {
                        (
                            m.key(),
                            Json::obj([
                                (
                                    "backend",
                                    Json::Str(
                                        match m.backend {
                                            ProcBackend::Threads => "threads",
                                            ProcBackend::Coroutine => "coroutine",
                                        }
                                        .into(),
                                    ),
                                ),
                                ("events", Json::UInt(m.events)),
                                ("handoffs", Json::UInt(m.handoffs)),
                                ("best_ns", Json::UInt(m.best.as_nanos() as u64)),
                                ("events_per_sec", Json::Float(m.events_per_sec())),
                            ]),
                        )
                    })
                    .collect(),
            ),
        ),
    ])
    .pretty()
}

/// Pull `workloads.<name>.events_per_sec` out of a baseline JSON dump
/// without a JSON parser: scan for the workload key, then the field.
fn baseline_events_per_sec(json: &str, name: &str) -> Option<f64> {
    let start = json.find(&format!("\"{name}\""))?;
    let tail = &json[start..];
    let field = tail.find("\"events_per_sec\":")?;
    let num = tail[field + "\"events_per_sec\":".len()..]
        .trim_start()
        .split([',', '}', '\n'])
        .next()?
        .trim();
    num.parse().ok()
}

fn main() {
    println!("engine_bench: virtual-time engine throughput (best of 5, both backends)\n");
    type Workload = (&'static str, fn(ProcBackend) -> (u64, u64, Duration));
    let workloads: [Workload; 5] = [
        ("pingpong", |b| pingpong(20_000, b)),
        ("alltoall", |b| alltoall(16, 60, b)),
        ("barrier_storm", |b| barrier_storm(32, 1_500, b)),
        ("reconfig_wave", |b| reconfig_wave(16, 600, b)),
        ("fig7_sweep3d_144x8", |b| fig7_sweep3d_144x8(3, b)),
    ];
    let backends = backends_under_test();
    let restricted = backends.len() < 2;
    let mut measures = Vec::new();
    for &backend in &backends {
        for &(name, f) in &workloads {
            let m = sample(name, backend, f);
            println!(
                "{:<30} {:>9} events in {:>9.3} ms  ->  {:>12.0} events/sec  ({} handoffs, hub-equiv {})",
                m.key(),
                m.events,
                m.best.as_secs_f64() * 1e3,
                m.events_per_sec(),
                m.handoffs,
                2 * m.events,
            );
            measures.push(m);
        }
    }
    // The backends simulate the same workloads, so their deterministic
    // event counts must agree — a cheap in-bench differential check.
    for w in &workloads {
        let counts: Vec<u64> = measures
            .iter()
            .filter(|m| m.name == w.0)
            .map(|m| m.events)
            .collect();
        assert!(
            counts.windows(2).all(|c| c[0] == c[1]),
            "{}: event counts diverged across backends: {counts:?}",
            w.0
        );
    }
    if restricted {
        // A single-backend profiling pass must not clobber the committed
        // two-backend JSON or trip the gate against missing rows.
        println!("\nrestricted backend set; skipping JSON dump and gate");
        return;
    }

    let path = out_path();
    let json = to_json(&measures);
    match std::fs::write(&path, json.clone() + "\n") {
        Ok(()) => println!("\nwrote {path}"),
        Err(e) => {
            eprintln!("failed to write {path}: {e}");
            std::process::exit(1);
        }
    }

    // Regression gate against a committed baseline (CI perf-smoke).
    // Coroutine rows gate hard; threads rows print verdicts only.
    if let Ok(baseline_path) = std::env::var("PERF_BASELINE") {
        let tolerance: f64 = std::env::var("PERF_SMOKE_TOLERANCE")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0.30);
        let baseline = std::fs::read_to_string(&baseline_path).unwrap_or_else(|e| {
            eprintln!("cannot read PERF_BASELINE {baseline_path}: {e}");
            std::process::exit(1);
        });
        let mut failed = false;
        for m in &measures {
            let key = m.key();
            match baseline_events_per_sec(&baseline, &key) {
                Some(base) => {
                    let floor = base * (1.0 - tolerance);
                    let now = m.events_per_sec();
                    let gated = m.backend == ProcBackend::Coroutine;
                    let verdict = match (now < floor, gated) {
                        (false, _) => "ok",
                        (true, true) => "REGRESSED",
                        (true, false) => "below floor (oracle backend, not gated)",
                    };
                    println!(
                        "perf-smoke {:<30} baseline {:>12.0}  now {:>12.0}  floor {:>12.0}  {}",
                        key, base, now, floor, verdict
                    );
                    failed |= gated && now < floor;
                }
                None => println!("perf-smoke {:<30} no baseline entry; skipped", key),
            }
        }
        if failed {
            eprintln!(
                "perf-smoke: coroutine events/sec regressed more than {:.0}% below baseline",
                tolerance * 100.0
            );
            std::process::exit(1);
        }
    }
}
