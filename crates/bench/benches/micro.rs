//! Criterion micro-benchmarks of the instrumentation fast paths.
//!
//! The paper's results rest on a cost hierarchy: absent probes are free,
//! deactivated probes pay a table lookup, active probes pay timestamp +
//! event append, dynamic probes add trampoline dispatch. The figure
//! harnesses *model* those costs on the virtual clock; these benchmarks
//! *measure* the real Rust implementations in real-clock mode, validating
//! that the implementation itself exhibits the hierarchy.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use parking_lot::Mutex;

use dynprof_image::{CallerCtx, FunctionInfo, ImageBuilder, ProbePoint};
use dynprof_sim::{Machine, ProbeCosts, Proc, Sim, SimTime};
use dynprof_vt::{vt_begin_snippet, vt_end_snippet, Trace, VtConfig, VtLib};

/// Run `f` inside a real-clock simulated process and return its measured
/// duration (setup excluded).
fn in_real_proc(f: impl FnOnce(&Proc) -> Duration + Send + 'static) -> Duration {
    let out = Arc::new(Mutex::new(Duration::ZERO));
    let out2 = Arc::clone(&out);
    let sim = Sim::real_time(Machine::test_machine());
    sim.spawn("bench", 0, move |p| {
        *out2.lock() = f(p);
    });
    sim.run();
    let d = *out.lock();
    d
}

fn bench_vt_fast_paths(c: &mut Criterion) {
    let mut g = c.benchmark_group("vt");
    g.bench_function("begin_end_active", |b| {
        b.iter_custom(|iters| {
            in_real_proc(move |p| {
                let vt = VtLib::new("b", 1, VtConfig::all_on(), ProbeCosts::power3());
                vt.init(p, 0);
                let f = vt.funcdef(p, "hot");
                let t = Instant::now();
                for _ in 0..iters {
                    vt.begin(p, 0, 0, f, 1);
                    vt.end(p, 0, 0, f);
                }
                t.elapsed()
            })
        });
    });
    g.bench_function("begin_end_deactivated", |b| {
        b.iter_custom(|iters| {
            in_real_proc(move |p| {
                let vt = VtLib::new("b", 1, VtConfig::all_off(), ProbeCosts::power3());
                vt.init(p, 0);
                let f = vt.funcdef(p, "cold");
                let t = Instant::now();
                for _ in 0..iters {
                    vt.begin(p, 0, 0, f, 1);
                    vt.end(p, 0, 0, f);
                }
                t.elapsed()
            })
        });
    });
    g.finish();
}

fn bench_image_call(c: &mut Criterion) {
    let mut g = c.benchmark_group("image");
    g.bench_function("call_unprobed", |b| {
        b.iter_custom(|iters| {
            in_real_proc(move |p| {
                let mut bld = ImageBuilder::new("b");
                let f = bld.add(FunctionInfo::new("f"));
                let img = bld.build();
                let t = Instant::now();
                for _ in 0..iters {
                    img.call(p, CallerCtx::default(), f, || criterion::black_box(1));
                }
                t.elapsed()
            })
        });
    });
    g.bench_function("call_trampolined_vt", |b| {
        b.iter_custom(|iters| {
            in_real_proc(move |p| {
                let mut bld = ImageBuilder::new("b");
                let f = bld.add(FunctionInfo::new("f"));
                let img = bld.build();
                let vt = VtLib::new("b", 1, VtConfig::all_on(), ProbeCosts::power3());
                vt.init(p, 0);
                let id = vt.funcdef(p, "f");
                img.insert(ProbePoint::entry(f), vt_begin_snippet(Arc::clone(&vt), id));
                img.insert(ProbePoint::exit(f), vt_end_snippet(Arc::clone(&vt), id));
                let t = Instant::now();
                for _ in 0..iters {
                    img.call(p, CallerCtx::default(), f, || criterion::black_box(1));
                }
                t.elapsed()
            })
        });
    });
    g.finish();
}

fn bench_trace_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace");
    let trace = {
        let mut events = Vec::new();
        for i in 0..10_000u64 {
            events.push(dynprof_vt::Event::FuncEnter {
                t: SimTime::from_nanos(i * 100),
                rank: (i % 64) as u32,
                thread: 0,
                func: dynprof_vt::VtFuncId((i % 199) as u32),
            });
        }
        Trace {
            program: "bench".into(),
            functions: (0..199).map(|i| format!("fn_{i}")).collect(),
            events,
        }
    };
    g.bench_function("encode_10k_events", |b| {
        b.iter(|| criterion::black_box(trace.encode()));
    });
    let encoded = trace.encode();
    g.bench_function("decode_10k_events", |b| {
        b.iter(|| Trace::decode(criterion::black_box(encoded.clone())).unwrap());
    });
    g.finish();
}

fn bench_config_resolve(c: &mut Criterion) {
    let mut cfg = VtConfig::all_off();
    for i in 0..60 {
        cfg.exact.insert(format!("hypre_SMG_{i}"), true);
    }
    cfg.prefixes.push(("hypre_Struct".into(), true));
    cfg.prefixes.push(("hypre_Box".into(), false));
    c.bench_function("config_resolve", |b| {
        b.iter(|| {
            criterion::black_box(cfg.resolve("hypre_StructVectorSetConstantValues"))
                | criterion::black_box(cfg.resolve("hypre_SMG_30"))
                | criterion::black_box(cfg.resolve("unrelated_function"))
        });
    });
}

fn bench_des_engine(c: &mut Criterion) {
    // Virtual-mode event throughput: two processes ping-pong through a
    // channel; measures scheduler handoff cost per event.
    c.bench_function("des_pingpong_1k", |b| {
        b.iter(|| {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            let ch_a: Arc<dynprof_sim::sync::SimChannel<u32>> =
                Arc::new(dynprof_sim::sync::SimChannel::new());
            let ch_b: Arc<dynprof_sim::sync::SimChannel<u32>> =
                Arc::new(dynprof_sim::sync::SimChannel::new());
            let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
            sim.spawn("ping", 0, move |p| {
                for i in 0..500u32 {
                    a1.send(p, i, SimTime::from_micros(1));
                    let _ = b1.recv(p);
                }
            });
            let (a2, b2) = (ch_a, ch_b);
            sim.spawn("pong", 1, move |p| {
                for _ in 0..500u32 {
                    let v = a2.recv(p);
                    b2.send(p, v, SimTime::from_micros(1));
                }
            });
            sim.run()
        });
    });
}

fn bench_runtimes(c: &mut Criterion) {
    // Host cost of simulating one MPI allreduce across 16 ranks.
    c.bench_function("sim_allreduce_16ranks", |b| {
        b.iter(|| {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            dynprof_mpi::launch(
                &sim,
                dynprof_mpi::JobSpec::new("b", 16),
                vec![],
                |p, c| {
                    c.init(p);
                    let v = c.allreduce(p, c.rank() as u64, |a, b| a + b);
                    criterion::black_box(v);
                    c.finalize(p);
                },
            );
            sim.run()
        });
    });
    // Host cost of simulating one OpenMP fork-join over 8 threads.
    c.bench_function("sim_omp_forkjoin_8threads", |b| {
        b.iter(|| {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            sim.spawn("app", 0, |p| {
                let rt = dynprof_omp::OmpRuntime::new(p, "app", 8, vec![]);
                for _ in 0..10 {
                    rt.parallel(p, "r", |ctx| {
                        ctx.proc.advance(SimTime::from_micros(5));
                    });
                }
                rt.shutdown(p);
            });
            sim.run()
        });
    });
    // Host cost of one full VT_confsync safe point at 64 ranks.
    c.bench_function("sim_confsync_64ranks", |b| {
        b.iter(|| {
            let vt = VtLib::new("b", 64, VtConfig::all_on(), ProbeCosts::power3());
            let monitor = dynprof_vt::MonitorLink::new();
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
            dynprof_mpi::launch(
                &sim,
                dynprof_mpi::JobSpec::new("b", 64),
                vec![],
                move |p, c| {
                    c.init(p);
                    v2.init(p, c.rank());
                    dynprof_vt::confsync(&v2, &m2, p, c, false);
                    c.finalize(p);
                },
            );
            sim.run()
        });
    });
}

criterion_group!(
    benches,
    bench_vt_fast_paths,
    bench_image_call,
    bench_trace_codec,
    bench_config_resolve,
    bench_des_engine,
    bench_runtimes
);
criterion_main!(benches);
