//! Micro-benchmarks of the instrumentation fast paths.
//!
//! The paper's results rest on a cost hierarchy: absent probes are free,
//! deactivated probes pay a table lookup, active probes pay timestamp +
//! event append, dynamic probes add trampoline dispatch. The figure
//! harnesses *model* those costs on the virtual clock; these benchmarks
//! *measure* the real Rust implementations in real-clock mode, validating
//! that the implementation itself exhibits the hierarchy — including the
//! observability layer's own hierarchy (a disabled `obs` site costs one
//! relaxed load + branch).
//!
//! The harness is self-contained (no external bench framework is
//! available in this build environment): each case is auto-calibrated so
//! one sample lasts ≥ ~10 ms, five samples are taken, and the best is
//! reported, criterion-style.
//!
//! Besides timing, this binary pins **per-operation allocation counts**
//! on the engine's hot paths (`alloc/*` rows): a counting
//! `#[global_allocator]` measures exactly how many heap allocations one
//! steady-state operation performs — control-plane send, probe fire,
//! trace append, coroutine handoff — and the run fails if a path gains
//! an allocation. Timing rows tolerate noise; the allocation ledger is
//! exact, so an accidental `clone()` or `Box::new` on a fast path is a
//! deterministic failure rather than a 3%-slower shrug.

use std::alloc::{GlobalAlloc, Layout, System};
use std::hint::black_box;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Counts every allocation (and reallocation) so fast paths can pin
/// their exact per-op heap traffic. Frees are not counted: the pinned
/// paths are judged on what they *acquire* per op.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers to `System` for every operation; only bookkeeping is
// added, and the counter is a relaxed atomic (signal-safe, no locks).
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Allocations performed while running `f`.
fn alloc_delta(f: impl FnOnce()) -> u64 {
    let before = ALLOCS.load(Ordering::Relaxed);
    f();
    ALLOCS.load(Ordering::Relaxed) - before
}

use parking_lot::Mutex;

use dynprof_image::{
    BinOp, CallerCtx, CtxField, Expr, FunctionInfo, ImageBuilder, IntrinsicTable, ProbePoint,
    Snippet, SnippetProgram, Stmt,
};
use dynprof_obs as obs;
use dynprof_sim::{hb, Machine, ProbeCosts, Proc, ProcBackend, Sim, SimTime};
use dynprof_vt::{vt_begin_snippet, vt_end_snippet, Trace, VtConfig, VtLib};

/// Run one benchmark: `f(iters)` must perform `iters` iterations and
/// return the time they took. Calibrates `iters`, samples five times, and
/// prints the best sample as ns/iter.
fn bench(name: &str, mut f: impl FnMut(u64) -> Duration) {
    let mut iters = 1u64;
    loop {
        let d = f(iters);
        if d >= Duration::from_millis(10) || iters >= 1 << 30 {
            break;
        }
        let target = Duration::from_millis(12).as_nanos() as f64;
        let scale = (target / d.as_nanos().max(1) as f64).max(2.0);
        iters = ((iters as f64) * scale.min(1e4)).ceil() as u64;
    }
    let best = (0..5).map(|_| f(iters)).min().expect("five samples");
    let ns_per_iter = best.as_nanos() as f64 / iters as f64;
    println!("{name:<34} {ns_per_iter:>12.1} ns/iter   ({iters} iters)");
}

/// Run `f` inside a real-clock simulated process and return its measured
/// duration (setup excluded).
fn in_real_proc(f: impl FnOnce(&Proc) -> Duration + Send + 'static) -> Duration {
    let out = Arc::new(Mutex::new(Duration::ZERO));
    let out2 = Arc::clone(&out);
    let sim = Sim::real_time(Machine::test_machine());
    sim.spawn("bench", 0, move |p| {
        *out2.lock() = f(p);
    });
    sim.run();
    let d = *out.lock();
    d
}

fn bench_obs_primitives() {
    // The branch every instrumented layer pays when observation is off:
    // a relaxed atomic load + test. This is the whole disabled-obs cost.
    bench("obs/enabled_check_disabled", |iters| {
        obs::set_enabled(false);
        let t = Instant::now();
        for _ in 0..iters {
            if black_box(obs::enabled()) {
                obs::counter("bench.micro.never").inc();
            }
        }
        t.elapsed()
    });
    bench("obs/counter_add_enabled", |iters| {
        obs::set_enabled(true);
        let c = obs::counter("bench.micro.counter");
        let t = Instant::now();
        for _ in 0..iters {
            if obs::enabled() {
                c.add(black_box(1));
            }
        }
        let d = t.elapsed();
        obs::set_enabled(false);
        d
    });
}

/// Run `f` inside a *virtual*-clock simulated process and return its
/// measured host duration. Happens-before recording only arms in virtual
/// mode, so the `check` rows must measure there.
fn in_virtual_proc(f: impl FnOnce(&Proc) -> Duration + Send + 'static) -> Duration {
    let out = Arc::new(Mutex::new(Duration::ZERO));
    let out2 = Arc::clone(&out);
    let sim = Sim::virtual_time(Machine::test_machine(), 1);
    sim.spawn("bench", 0, move |p| {
        *out2.lock() = f(p);
    });
    sim.run();
    let d = *out.lock();
    d
}

/// The des/pingpong_1k workload with happens-before checking optionally
/// armed: the on/off delta is the runtime cost of vector-clock recording
/// per channel operation.
fn check_pingpong(iters: u64, check_on: bool) -> Duration {
    let t = Instant::now();
    for _ in 0..iters {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        if check_on {
            sim.enable_check();
        }
        let ch_a: Arc<dynprof_sim::sync::SimChannel<u32>> =
            Arc::new(dynprof_sim::sync::SimChannel::new());
        let ch_b: Arc<dynprof_sim::sync::SimChannel<u32>> =
            Arc::new(dynprof_sim::sync::SimChannel::new());
        let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
        sim.spawn("ping", 0, move |p| {
            for i in 0..500u32 {
                a1.send(p, i, SimTime::from_micros(1));
                let _ = b1.recv(p);
            }
        });
        let (a2, b2) = (ch_a, ch_b);
        sim.spawn("pong", 1, move |p| {
            for _ in 0..500u32 {
                let v = a2.recv(p);
                b2.send(p, v, SimTime::from_micros(1));
            }
        });
        black_box(sim.run());
    }
    t.elapsed()
}

fn bench_check_primitives() {
    // The gate every sync primitive pays when happens-before checking is
    // compiled in but not enabled at runtime. With the `check` feature
    // off, `hb::on` is a const false and this row measures the compiled-
    // away floor (the loop itself).
    bench("check/gate_runtime_off", |iters| {
        in_virtual_proc(move |p| {
            let t = Instant::now();
            for _ in 0..iters {
                black_box(hb::on(p));
            }
            t.elapsed()
        })
    });
    // 1000 channel ops per sim: the on/off delta is vector-clock cost.
    bench("check/pingpong_1k_off", |iters| {
        check_pingpong(iters, false)
    });
    bench("check/pingpong_1k_on", |iters| check_pingpong(iters, true));
}

fn bench_vt_fast_paths() {
    bench("vt/begin_end_active", |iters| {
        in_real_proc(move |p| {
            let vt = VtLib::new("b", 1, VtConfig::all_on(), ProbeCosts::power3());
            vt.init(p, 0);
            let f = vt.funcdef(p, "hot");
            let t = Instant::now();
            for _ in 0..iters {
                vt.begin(p, 0, 0, f, 1);
                vt.end(p, 0, 0, f);
            }
            t.elapsed()
        })
    });
    bench("vt/begin_end_deactivated", |iters| {
        in_real_proc(move |p| {
            let vt = VtLib::new("b", 1, VtConfig::all_off(), ProbeCosts::power3());
            vt.init(p, 0);
            let f = vt.funcdef(p, "cold");
            let t = Instant::now();
            for _ in 0..iters {
                vt.begin(p, 0, 0, f, 1);
                vt.end(p, 0, 0, f);
            }
            t.elapsed()
        })
    });
    // Same active path with runtime observation on: the delta against
    // vt/begin_end_active is the cost of live metric updates.
    bench("vt/begin_end_active_obs_on", |iters| {
        in_real_proc(move |p| {
            obs::set_enabled(true);
            let vt = VtLib::new("b", 1, VtConfig::all_on(), ProbeCosts::power3());
            vt.init(p, 0);
            let f = vt.funcdef(p, "hot");
            let t = Instant::now();
            for _ in 0..iters {
                vt.begin(p, 0, 0, f, 1);
                vt.end(p, 0, 0, f);
            }
            let d = t.elapsed();
            obs::set_enabled(false);
            d
        })
    });
}

fn bench_image_call() {
    bench("image/call_unprobed", |iters| {
        in_real_proc(move |p| {
            let mut bld = ImageBuilder::new("b");
            let f = bld.add(FunctionInfo::new("f"));
            let img = bld.build();
            let t = Instant::now();
            for _ in 0..iters {
                img.call(p, CallerCtx::default(), f, || black_box(1));
            }
            t.elapsed()
        })
    });
    bench("image/call_trampolined_vt", |iters| {
        in_real_proc(move |p| {
            let mut bld = ImageBuilder::new("b");
            let f = bld.add(FunctionInfo::new("f"));
            let img = bld.build();
            let vt = VtLib::new("b", 1, VtConfig::all_on(), ProbeCosts::power3());
            vt.init(p, 0);
            let id = vt.funcdef(p, "f");
            img.try_insert(ProbePoint::entry(f), vt_begin_snippet(Arc::clone(&vt), id))
                .expect("patchable target");
            img.try_insert(ProbePoint::exit(f), vt_end_snippet(Arc::clone(&vt), id))
                .expect("patchable target");
            let t = Instant::now();
            for _ in 0..iters {
                img.call(p, CallerCtx::default(), f, || black_box(1));
            }
            t.elapsed()
        })
    });
}

/// A counting probe fired through an image, as an IR-compiled program and
/// as an equivalent hand-written closure, timed in fine-grained alternating
/// slices inside one process. Returns `(ir_ns, closure_ns, ratio)` from the
/// per-side minima over the slices: noise (scheduler preemption, competing
/// load) only ever inflates a slice, so the minimum is the least-noise
/// estimate of each side's true fire cost, and interleaving keeps slow
/// drift from favouring whichever side ran first.
fn paired_counting_fire_ns() -> (f64, f64, f64) {
    let out = Arc::new(Mutex::new((f64::NAN, f64::NAN, f64::INFINITY)));
    let out2 = Arc::clone(&out);
    let sim = Sim::real_time(Machine::test_machine());
    sim.spawn("bench", 0, move |p| {
        let mut bld = ImageBuilder::new("b");
        let f_ir = bld.add(FunctionInfo::new("f_ir"));
        let f_cl = bld.add(FunctionInfo::new("f_cl"));
        let img = bld.build();
        let prog = SnippetProgram::new(
            "count_ir",
            1,
            vec![Stmt::Store {
                slot: Expr::Const(0),
                value: Expr::bin(BinOp::Add, Expr::load(0), Expr::Ctx(CtxField::Reps)),
            }],
            IntrinsicTable::empty(),
        );
        img.try_insert(
            ProbePoint::entry(f_ir),
            prog.compile().expect("count program verifies"),
        )
        .expect("patchable target");
        // The legacy shape: a hand-written closure with a *declared*
        // (trusted) cost — exactly what the IR's derived bound replaces.
        // `fire_point` charges the declared cost, the interpreter charges
        // per-op; both sides advance the same virtual time per fire.
        let data = Arc::new(Mutex::new(vec![0i64]));
        img.try_insert(
            ProbePoint::entry(f_cl),
            Snippet::new("count_closure", dynprof_image::STORE_COST, move |ctx| {
                let mut d = data.lock();
                d[0] = d[0].wrapping_add(ctx.reps as i64);
            }),
        )
        .expect("patchable target");
        const BATCH: u64 = 20_000;
        let slice = |f| {
            let t = Instant::now();
            for _ in 0..BATCH {
                img.call(p, CallerCtx::default(), f, || black_box(1));
            }
            t.elapsed().as_nanos() as f64 / BATCH as f64
        };
        slice(f_cl); // warm-up
        slice(f_ir);
        let (mut ir, mut cl) = (f64::INFINITY, f64::INFINITY);
        for _ in 0..80 {
            cl = cl.min(slice(f_cl));
            ir = ir.min(slice(f_ir));
        }
        *out2.lock() = (ir, cl, ir / cl);
    });
    sim.run();
    let r = *out.lock();
    r
}

fn bench_verifier() {
    // A representative branchy program: timer pair around a bounded loop
    // and a conditional emit — every verifier domain gets exercised.
    let prog = SnippetProgram::new(
        "bench_verify",
        4,
        vec![
            Stmt::StartTimer,
            Stmt::Loop {
                trips: Expr::Const(8),
                body: vec![Stmt::Store {
                    slot: Expr::Const(0),
                    value: Expr::bin(BinOp::Add, Expr::load(0), Expr::Ctx(CtxField::Reps)),
                }],
            },
            Stmt::If {
                cond: Expr::Ctx(CtxField::IsEntry),
                then_body: vec![Stmt::Emit {
                    tag: 1,
                    value: Expr::load(0),
                }],
                else_body: vec![],
            },
            Stmt::StopTimer,
        ],
        IntrinsicTable::empty(),
    );
    assert!(prog.verify().ok(), "bench program must verify");
    bench("verify/snippet_program", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(black_box(&prog).verify());
        }
        t.elapsed()
    });

    // Interpreted IR must stay in the same cost class as a hand-written
    // closure on the fire path (install-time verification is where the
    // IR pays; the per-fire tree walk has to be near-free next to the
    // dispatch + context machinery).
    let (ir_ns, closure_ns, ratio) = paired_counting_fire_ns();
    println!(
        "{:<34} {ir_ns:>12.1} ns/iter   (closure {closure_ns:.1} ns/iter, ratio {ratio:.3})",
        "image/fire_ir_vs_closure"
    );
    // Typical measured ratio is 1.01-1.03 (the fused store path pays one
    // extra virtual-clock advance); the default allows 10% so residual
    // slice noise cannot fail a healthy build, and CI relaxes further.
    let tolerance: f64 = std::env::var("FIRE_IR_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.10);
    assert!(
        ratio <= 1.0 + tolerance,
        "IR-compiled fire is {:.1}% slower than the closure fire (tolerance {:.0}%; \
         override with FIRE_IR_TOLERANCE)",
        (ratio - 1.0) * 100.0,
        tolerance * 100.0
    );
}

fn bench_trace_codec() {
    let trace = {
        let mut events = Vec::new();
        for i in 0..10_000u64 {
            events.push(dynprof_vt::Event::FuncEnter {
                t: SimTime::from_nanos(i * 100),
                rank: (i % 64) as u32,
                thread: 0,
                func: dynprof_vt::VtFuncId((i % 199) as u32),
            });
        }
        Trace {
            program: "bench".into(),
            functions: (0..199).map(|i| format!("fn_{i}")).collect(),
            events,
        }
    };
    bench("trace/encode_10k_events", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(trace.encode());
        }
        t.elapsed()
    });
    let encoded = trace.encode();
    bench("trace/decode_10k_events", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(Trace::decode(black_box(encoded.clone())).unwrap());
        }
        t.elapsed()
    });
}

/// The store's CRC bill: appending a 10k-event trace through the full
/// chunked writer (encode + checksum + buffered I/O to memory) next to
/// the raw CRC-32 pass over the same bytes. The checksum must stay a
/// small fraction of the pipeline it protects.
fn bench_store_crc() {
    use std::io::Cursor;

    use dynprof_analysis::store::{crc32, StoreOptions, StoreWriter};

    let trace = {
        let mut events = Vec::new();
        for i in 0..10_000u64 {
            events.push(dynprof_vt::Event::FuncEnter {
                t: SimTime::from_nanos(i * 100),
                rank: (i % 64) as u32,
                thread: 0,
                func: dynprof_vt::VtFuncId((i % 199) as u32),
            });
        }
        Trace {
            program: "bench".into(),
            functions: (0..199).map(|i| format!("fn_{i}")).collect(),
            events,
        }
    };
    let write_once = |trace: &Trace| {
        let mut w = StoreWriter::new(
            Cursor::new(Vec::new()),
            trace.program.clone(),
            StoreOptions { chunk_events: 256 },
        )
        .expect("in-memory sink");
        w.set_functions(trace.functions.clone());
        for ev in &trace.events {
            w.append(ev);
        }
        black_box(w.finish().expect("in-memory finish"));
    };
    // The CRC pass runs over the store's actual bytes.
    let file = {
        let path =
            std::env::temp_dir().join(format!("dynprof-bench-crc-{}.vgvs", std::process::id()));
        dynprof_analysis::store::write_store_from_trace(
            &trace,
            &path,
            StoreOptions { chunk_events: 256 },
        )
        .expect("bench store");
        let bytes = std::fs::read(&path).expect("bench store bytes");
        std::fs::remove_file(&path).ok();
        bytes
    };

    // Paired minima, the fire_ir_vs_closure technique: noise only ever
    // inflates a slice, so each side's minimum over interleaved slices
    // is its least-noise estimate.
    let (mut append_ns, mut crc_ns) = (f64::INFINITY, f64::INFINITY);
    for _ in 0..30 {
        let t = Instant::now();
        write_once(black_box(&trace));
        append_ns = append_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        black_box(crc32(black_box(&file)));
        crc_ns = crc_ns.min(t.elapsed().as_nanos() as f64);
    }
    let overhead = crc_ns / append_ns;
    println!(
        "{:<34} {:>12.1} ns/iter   (crc32 pass {:.1} ns, {:.2}% of append)",
        "store/append_10k_events_crc",
        append_ns,
        crc_ns,
        overhead * 100.0
    );
    // Slice-by-8 runs at several GB/s; the whole store pipeline (delta
    // encode, varint, chunking, buffered writes) dwarfs it. Typical
    // measured share is well under 2%; 5% is the contract.
    let tolerance: f64 = std::env::var("STORE_CRC_TOLERANCE")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.05);
    assert!(
        overhead <= tolerance,
        "per-chunk CRC-32 costs {:.2}% of store append (tolerance {:.0}%; \
         override with STORE_CRC_TOLERANCE)",
        overhead * 100.0,
        tolerance * 100.0
    );
}

fn bench_config_resolve() {
    let mut cfg = VtConfig::all_off();
    for i in 0..60 {
        cfg.exact.insert(format!("hypre_SMG_{i}"), true);
    }
    cfg.prefixes.push(("hypre_Struct".into(), true));
    cfg.prefixes.push(("hypre_Box".into(), false));
    bench("config/resolve", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            black_box(
                black_box(cfg.resolve("hypre_StructVectorSetConstantValues"))
                    | black_box(cfg.resolve("hypre_SMG_30"))
                    | black_box(cfg.resolve("unrelated_function")),
            );
        }
        t.elapsed()
    });
}

fn bench_des_engine() {
    // Virtual-mode event throughput: two processes ping-pong through a
    // channel; measures scheduler handoff cost per event.
    bench("des/pingpong_1k", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            let ch_a: Arc<dynprof_sim::sync::SimChannel<u32>> =
                Arc::new(dynprof_sim::sync::SimChannel::new());
            let ch_b: Arc<dynprof_sim::sync::SimChannel<u32>> =
                Arc::new(dynprof_sim::sync::SimChannel::new());
            let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
            sim.spawn("ping", 0, move |p| {
                for i in 0..500u32 {
                    a1.send(p, i, SimTime::from_micros(1));
                    let _ = b1.recv(p);
                }
            });
            let (a2, b2) = (ch_a, ch_b);
            sim.spawn("pong", 1, move |p| {
                for _ in 0..500u32 {
                    let v = a2.recv(p);
                    b2.send(p, v, SimTime::from_micros(1));
                }
            });
            black_box(sim.run());
        }
        t.elapsed()
    });
    // Allocation regression guard for the control-plane fast path: with
    // no fault plan installed, `send_ctl` must be exactly `send` — no
    // message clone, no RNG draw. The payload is a 64-byte boxed slice,
    // so reintroducing a speculative clone on the duplication path would
    // add a heap alloc + copy per send and show up here as a step change;
    // sync.rs's `send_ctl_never_clones_without_a_fault_plan` pins the
    // exact clone count to zero.
    bench("des/send_ctl_nofault_1k", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            let ch: Arc<dynprof_sim::sync::SimChannel<Box<[u8]>>> =
                Arc::new(dynprof_sim::sync::SimChannel::new());
            sim.spawn("solo", 0, move |p| {
                for _ in 0..1_000 {
                    ch.send_ctl(p, vec![0u8; 64].into_boxed_slice(), SimTime::ZERO);
                    black_box(ch.try_recv(p));
                }
            });
            black_box(sim.run());
        }
        t.elapsed()
    });
}

fn bench_runtimes() {
    // Host cost of simulating one MPI allreduce across 16 ranks.
    bench("sim/allreduce_16ranks", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            dynprof_mpi::launch(&sim, dynprof_mpi::JobSpec::new("b", 16), vec![], |p, c| {
                c.init(p);
                let v = c.allreduce(p, c.rank() as u64, |a, b| a + b);
                black_box(v);
                c.finalize(p);
            });
            black_box(sim.run());
        }
        t.elapsed()
    });
    // Host cost of simulating one OpenMP fork-join over 8 threads.
    bench("sim/omp_forkjoin_8threads", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            sim.spawn("app", 0, |p| {
                let rt = dynprof_omp::OmpRuntime::new(p, "app", 8, vec![]);
                for _ in 0..10 {
                    rt.parallel(p, "r", |ctx| {
                        ctx.proc.advance(SimTime::from_micros(5));
                    });
                }
                rt.shutdown(p);
            });
            black_box(sim.run());
        }
        t.elapsed()
    });
    // Host cost of one controller decision at 64 ranks × 32 functions:
    // the per-epoch bookkeeping VT_confsync pays when an overhead budget
    // is set (scan every rank's stat table, compute deltas, score, sort).
    bench("controller/decide_64ranks", |iters| {
        in_real_proc(move |p| {
            let vt = VtLib::new("b", 64, VtConfig::all_on(), ProbeCosts::power3());
            for r in 0..64 {
                vt.init(p, r);
            }
            let funcs: Vec<_> = (0..32).map(|i| vt.funcdef(p, &format!("fn_{i}"))).collect();
            for r in 0..64 {
                for (i, &f) in funcs.iter().enumerate() {
                    for _ in 0..(i % 7 + 1) {
                        vt.begin(p, r, 0, f, 1);
                        vt.end(p, r, 0, f);
                    }
                }
            }
            let ctl = dynprof_vt::OverheadController::budgeted(5.0);
            let t = Instant::now();
            for round in 0..iters {
                black_box(ctl.decide(&vt, SimTime::from_micros(round + 1), round));
            }
            t.elapsed()
        })
    });
    // Host cost of one full VT_confsync safe point at 64 ranks.
    bench("sim/confsync_64ranks", |iters| {
        let t = Instant::now();
        for _ in 0..iters {
            let vt = VtLib::new("b", 64, VtConfig::all_on(), ProbeCosts::power3());
            let monitor = dynprof_vt::MonitorLink::new();
            let sim = Sim::virtual_time(Machine::test_machine(), 1);
            let (v2, m2) = (Arc::clone(&vt), Arc::clone(&monitor));
            dynprof_mpi::launch(
                &sim,
                dynprof_mpi::JobSpec::new("b", 64),
                vec![],
                move |p, c| {
                    c.init(p);
                    v2.init(p, c.rank());
                    dynprof_vt::confsync(&v2, &m2, p, c, false);
                    c.finalize(p);
                },
            );
            black_box(sim.run());
        }
        t.elapsed()
    });
}

/// Print and pin one fast path's allocation ledger: `total` allocations
/// over `ops` steady-state operations must floor-divide to exactly
/// `expect_per_op`, and the amortized remainder (container doublings,
/// chunk flushes) must stay under `max_amortized`. The remainder bound is
/// what catches a fractional regression — a path that allocates every
/// other op still floors to its old per-op count but blows the remainder.
fn pinned_allocs(name: &str, total: u64, ops: u64, expect_per_op: u64, max_amortized: u64) {
    let per_op = total / ops;
    let amortized = total - per_op * ops;
    println!("{name:<34} {per_op:>12} allocs/op  (+{amortized} amortized over {ops} ops)");
    assert_eq!(
        per_op, expect_per_op,
        "{name}: per-op allocation count drifted (total {total} over {ops} ops)"
    );
    assert!(
        amortized <= max_amortized,
        "{name}: amortized allocations {amortized} exceed budget {max_amortized} \
         (a fast path likely gained a conditional allocation)"
    );
}

/// The control-plane send guard, now as an exact ledger: with no fault
/// plan installed, `send_ctl` + `try_recv` of a pre-allocated boxed
/// payload performs **zero** heap allocations per op — no speculative
/// clone for the duplication path, no RNG draw, no queue churn.
fn alloc_send_ctl_nofault() {
    const OPS: u64 = 4096;
    const WARM: u64 = 256;
    let out = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let sim = Sim::virtual_time(Machine::test_machine(), 1);
    sim.spawn("ledger", 0, move |p| {
        let ch: Arc<dynprof_sim::sync::SimChannel<Box<[u8]>>> =
            Arc::new(dynprof_sim::sync::SimChannel::new());
        let mut payloads: Vec<Box<[u8]>> = (0..WARM + OPS)
            .map(|_| vec![0u8; 64].into_boxed_slice())
            .collect();
        for _ in 0..WARM {
            ch.send_ctl(p, payloads.pop().expect("payload"), SimTime::ZERO);
            black_box(ch.try_recv(p));
        }
        *out2.lock() = alloc_delta(|| {
            for _ in 0..OPS {
                ch.send_ctl(p, payloads.pop().expect("payload"), SimTime::ZERO);
                black_box(ch.try_recv(p));
            }
        });
    });
    sim.run();
    let total = *out.lock();
    pinned_allocs("alloc/send_ctl_nofault", total, OPS, 0, 16);
}

/// A counting probe fired through a patched image: the whole dispatch —
/// probe-table lookup, trampoline, snippet closure, cost charge — is
/// allocation-free per fire.
fn alloc_probe_fire() {
    const OPS: u64 = 4096;
    const WARM: u64 = 256;
    let out = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let sim = Sim::virtual_time(Machine::test_machine(), 1);
    sim.spawn("ledger", 0, move |p| {
        let mut bld = ImageBuilder::new("ledger");
        let f = bld.add(FunctionInfo::new("f"));
        let img = bld.build();
        let data = Arc::new(Mutex::new(vec![0i64]));
        img.try_insert(
            ProbePoint::entry(f),
            Snippet::new("count", dynprof_image::STORE_COST, move |ctx| {
                let mut d = data.lock();
                d[0] = d[0].wrapping_add(ctx.reps as i64);
            }),
        )
        .expect("patchable target");
        for _ in 0..WARM {
            img.call(p, CallerCtx::default(), f, || black_box(1));
        }
        *out2.lock() = alloc_delta(|| {
            for _ in 0..OPS {
                img.call(p, CallerCtx::default(), f, || black_box(1));
            }
        });
    });
    sim.run();
    let total = *out.lock();
    pinned_allocs("alloc/probe_fire", total, OPS, 0, 16);
}

/// Appending events through the full chunked store writer (delta encode,
/// varint, CRC, buffered sink): zero allocations per event, with an
/// amortized remainder for the per-chunk flushes and buffer doublings.
fn alloc_trace_append() {
    use std::io::Cursor;

    use dynprof_analysis::store::{StoreOptions, StoreWriter};

    const OPS: u64 = 8192;
    const WARM: u64 = 512;
    let mut w = StoreWriter::new(
        Cursor::new(Vec::new()),
        "ledger".to_string(),
        StoreOptions { chunk_events: 256 },
    )
    .expect("in-memory sink");
    w.set_functions((0..199).map(|i| format!("fn_{i}")).collect());
    let ev = |i: u64| dynprof_vt::Event::FuncEnter {
        t: SimTime::from_nanos(i * 100),
        rank: (i % 64) as u32,
        thread: 0,
        func: dynprof_vt::VtFuncId((i % 199) as u32),
    };
    for i in 0..WARM {
        w.append(&ev(i));
    }
    let total = alloc_delta(|| {
        for i in 0..OPS {
            w.append(&ev(WARM + i));
        }
    });
    black_box(w.finish().expect("in-memory finish"));
    // ~32 chunk flushes land in the window; each may stage fresh chunk
    // buffers, and the in-memory sink doubles a few times.
    pinned_allocs("alloc/trace_append", total, OPS, 0, OPS / 4);
}

/// The headline ledger of the threadless engine: one steady-state
/// coroutine handoff — block the receiver, pop the next event, pre-set
/// its clock, swap stacks — performs **zero** heap allocations. (On the
/// threads backend the same dispatch logic holds, but the park/unpark
/// syscalls hide any such regression; the coroutine path makes it
/// measurable and therefore pinnable.)
fn alloc_coroutine_handoff() {
    const ROUNDS: u64 = 2048; // two handoffs per round: ping->pong->ping
    const WARM: u64 = 128;
    let out = Arc::new(Mutex::new(0u64));
    let out2 = Arc::clone(&out);
    let sim = Sim::virtual_time_with_backend(Machine::test_machine(), 1, ProcBackend::Coroutine);
    let ch_a: Arc<dynprof_sim::sync::SimChannel<u32>> =
        Arc::new(dynprof_sim::sync::SimChannel::new());
    let ch_b: Arc<dynprof_sim::sync::SimChannel<u32>> =
        Arc::new(dynprof_sim::sync::SimChannel::new());
    let (a1, b1) = (Arc::clone(&ch_a), Arc::clone(&ch_b));
    sim.spawn("ping", 0, move |p| {
        for i in 0..WARM {
            a1.send(p, i as u32, SimTime::from_micros(1));
            let _ = b1.recv(p);
        }
        // The window covers both sides' steady-state work: pong's sends
        // and receives interleave with ours on the same counter.
        *out2.lock() = alloc_delta(|| {
            for i in 0..ROUNDS {
                a1.send(p, i as u32, SimTime::from_micros(1));
                let _ = b1.recv(p);
            }
        });
    });
    let (a2, b2) = (ch_a, ch_b);
    sim.spawn("pong", 1, move |p| {
        for _ in 0..WARM + ROUNDS {
            let v = a2.recv(p);
            b2.send(p, v, SimTime::from_micros(1));
        }
    });
    sim.run();
    let total = *out.lock();
    pinned_allocs("alloc/coroutine_handoff", total, 2 * ROUNDS, 0, 16);
}

/// The allocation ledger: exact per-op heap traffic of the fast paths.
fn bench_alloc_ledger() {
    println!("\nallocation ledger (exact counts, pinned)\n");
    alloc_send_ctl_nofault();
    alloc_probe_fire();
    alloc_trace_append();
    alloc_coroutine_handoff();
}

fn main() {
    println!("micro-benchmarks (best of 5 calibrated samples)\n");
    bench_obs_primitives();
    bench_check_primitives();
    bench_vt_fast_paths();
    bench_image_call();
    bench_verifier();
    bench_trace_codec();
    bench_store_crc();
    bench_config_resolve();
    bench_des_engine();
    bench_runtimes();
    bench_alloc_ledger();
}
