//! Umt98 — the Boltzmann transport equation on an unstructured mesh
//! (ASCI kernel, OpenMP/F77).
//!
//! Paper Table 2 and §4.3: 44 functions, most of which perform
//! initialization; 6 are responsible for most of the functionality and
//! the majority of the execution time (the `Subset`/`Dynamic` target).
//! As an OpenMP code it is restricted to a single SMP node, so the paper
//! measures 1–8 processors; the input fixes the global problem, so time
//! falls as threads are added (strong scaling).
//!
//! The sweep schedule parallelizes zones across the team with a dynamic
//! schedule (unstructured meshes balance poorly under static partitions);
//! small per-zone helper functions dominate the *call* count, giving
//! `Dynamic` its "small but noticeable" edge over the static policies
//! (Fig 7d).

use std::sync::Arc;

use dynprof_core::{AppCtx, AppMode, AppSpec};
use dynprof_image::FunctionInfo;
use dynprof_omp::Schedule;

use crate::workload::{generate_names, leaf_on_thread, scaled, synthetic_blocks, work, Outputs};

/// Number of functions in the Umt98 manifest (paper §4.3).
pub const FUNCTIONS: usize = 44;
/// Size of the hot subset (paper §4.3).
pub const SUBSET: usize = 6;

/// The six functions responsible for most of the execution time.
const HOT: [&str; SUBSET] = [
    "snswp3d",
    "snflwxyz",
    "snneed",
    "snmoments",
    "snqq",
    "sweepscheduler",
];

/// Per-zone helpers active during the sweep (not in the subset — they are
/// "functionality", not the headline kernels, but they are called a lot).
const RUN_HELPERS: [&str; 3] = ["zonediff", "facedot", "fluxsum"];

const INIT_STEMS: &[&str] = &[
    "main",
    "rdmesh",
    "genmesh",
    "setbc",
    "partition",
    "snrqst",
    "snmref",
    "sninit",
    "rswgts",
    "angleset",
    "matprops",
    "zonegeom",
    "facegeom",
    "connect",
    "report",
];

/// Umt98 run parameters.
#[derive(Clone)]
pub struct Umt98Params {
    /// Mesh zones (strong scaling input).
    pub zones: usize,
    /// Discrete ordinates (angles).
    pub angles: usize,
    /// Transport iterations.
    pub iterations: usize,
    /// Zones claimed per dynamic-schedule grab.
    pub chunk: usize,
    /// Global scale on modelled work.
    pub scale: f64,
    /// Result sink.
    pub outputs: Arc<Outputs>,
}

impl Umt98Params {
    /// Paper-scale parameters.
    pub fn paper() -> Umt98Params {
        Umt98Params {
            zones: 48_000,
            angles: 48,
            iterations: 6,
            chunk: 128,
            scale: 1.0,
            outputs: Outputs::new(),
        }
    }

    /// Small parameters for tests.
    pub fn test() -> Umt98Params {
        Umt98Params {
            zones: 600,
            angles: 4,
            iterations: 2,
            chunk: 64,
            scale: 0.05,
            outputs: Outputs::new(),
        }
    }
}

/// The full Umt98 function manifest.
pub fn manifest() -> Vec<FunctionInfo> {
    let mut names: Vec<String> = HOT.iter().map(|s| s.to_string()).collect();
    names.extend(RUN_HELPERS.iter().map(|s| s.to_string()));
    names.extend(generate_names(
        INIT_STEMS,
        FUNCTIONS - SUBSET - RUN_HELPERS.len(),
    ));
    names
        .into_iter()
        .map(|n| {
            FunctionInfo::new(n)
                .in_module("umt")
                .with_size(1024)
                .with_blocks(synthetic_blocks(1024))
        })
        .collect()
}

/// The hot subset (6 functions).
pub fn subset() -> Vec<String> {
    HOT.iter().map(|s| s.to_string()).collect()
}

/// Build the Umt98 [`AppSpec`] for an OpenMP team of `threads`.
pub fn umt98(threads: usize, params: Umt98Params) -> AppSpec {
    let p = params.clone();
    AppSpec {
        name: "umt98".into(),
        functions: manifest(),
        subset: subset(),
        mode: AppMode::Omp { threads },
        body: Arc::new(move |ctx| run_process(ctx, &p)),
    }
}

/// Modelled flops of one zone-angle chunk element in `snswp3d`.
const FLOPS_PER_ZONE_ANGLE: u64 = 5800;

fn run_process(ctx: &AppCtx<'_>, params: &Umt98Params) {
    let zones = params.zones as u64;

    let f_sched = ctx.fid("sweepscheduler");
    let f_swp = ctx.fid("snswp3d");
    let f_flw = ctx.fid("snflwxyz");
    let f_need = ctx.fid("snneed");
    let f_mom = ctx.fid("snmoments");
    let f_qq = ctx.fid("snqq");
    let helpers: Vec<_> = RUN_HELPERS.iter().map(|f| ctx.fid(f)).collect();

    // Initialization: most of the 44 functions run exactly once here.
    for stem in INIT_STEMS {
        let fid = ctx.fid(stem);
        ctx.call(fid, || {
            work(ctx, scaled(zones * 30, params.scale), zones * 24);
        });
    }

    // Real numerics: a toy Sn iteration on a coarse angular grid whose
    // scalar flux must stay positive and converge geometrically.
    let mut phi_real = vec![1.0f64; 512];
    let mut real_err = f64::INFINITY;

    let rt = ctx.make_omp_runtime();
    for _it in 0..params.iterations {
        for _angle in 0..params.angles {
            ctx.call(f_sched, || {
                // Upstream dependency analysis for this ordinate.
                ctx.call(f_need, || {
                    work(ctx, scaled(zones * 4, params.scale), zones * 4);
                });
                rt.parallel_for(
                    ctx.p,
                    "snswp3d_zones",
                    0..params.zones,
                    Schedule::Dynamic {
                        chunk: params.chunk,
                    },
                    |zone_chunk, rctx| {
                        let n = zone_chunk.len() as u64;
                        // snswp3d: one coarse call per zone chunk, doing
                        // the per-zone-angle transport work.
                        ctx.call_batch_on_thread(rctx.proc, rctx.tid, f_swp, 1, |_| {
                            let cpu = rctx.proc.machine().cpu;
                            rctx.proc.advance(
                                cpu.work(scaled(n * FLOPS_PER_ZONE_ANGLE, params.scale), n * 96),
                            );
                        });
                        // Per-zone helpers dominate the call count.
                        for &h in &helpers {
                            leaf_on_thread(
                                ctx,
                                rctx.proc,
                                rctx.tid,
                                h,
                                scaled(n, params.scale),
                                150,
                                48,
                            );
                        }
                    },
                );
            });
        }
        // Moments + flux update on the master thread.
        ctx.call(f_mom, || {
            work(ctx, scaled(zones * 60, params.scale), zones * 16);
        });
        ctx.call(f_qq, || {
            work(ctx, scaled(zones * 25, params.scale), zones * 8);
        });
        ctx.call(f_flw, || {
            work(ctx, scaled(zones * 40, params.scale), zones * 16);
        });
        // Real numerics: damped source iteration.
        let mut err = 0.0f64;
        for v in phi_real.iter_mut() {
            let nv = 0.5 * *v + 0.25;
            err = err.max((nv - *v).abs());
            *v = nv;
        }
        real_err = err;
    }
    rt.shutdown(ctx.p);

    let total: f64 = phi_real.iter().sum();
    params.outputs.record("flux_total", total);
    params.outputs.record("final_err", real_err);
    params.outputs.record(
        "min_flux",
        phi_real.iter().cloned().fold(f64::INFINITY, f64::min),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_core::{run_session, SessionConfig};
    use dynprof_sim::Machine;
    use dynprof_vt::Policy;

    #[test]
    fn manifest_matches_paper_counts() {
        let m = manifest();
        assert_eq!(m.len(), FUNCTIONS);
        assert_eq!(subset().len(), SUBSET);
        let names: std::collections::HashSet<_> = m.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names.len(), FUNCTIONS, "duplicate names");
    }

    #[test]
    fn strong_scaling_with_threads() {
        let t1 = run_session(
            &umt98(1, Umt98Params::test()),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        )
        .app_time;
        let t4 = run_session(
            &umt98(4, Umt98Params::test()),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        )
        .app_time;
        assert!(t4 < t1, "1 thread {t1}, 4 threads {t4}");
    }

    #[test]
    fn source_iteration_converges_positive() {
        let params = Umt98Params::test();
        let outputs = Arc::clone(&params.outputs);
        run_session(
            &umt98(2, params),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        );
        assert!(outputs.get("min_flux").unwrap() > 0.0);
        assert!(outputs.get("final_err").unwrap() < 1.0);
        // Fixed point of phi = phi/2 + 1/4 is 1/2; after a couple of
        // iterations the total is between 256 (limit) and 512 (start).
        let total = outputs.get("flux_total").unwrap();
        assert!(total > 256.0 && total < 512.0, "total {total}");
    }

    #[test]
    fn dynamic_beats_static_policies() {
        // Fig 7d: a noticeable benefit from dynamic instrumentation.
        let run = |pol| {
            run_session(
                &umt98(2, Umt98Params::test()),
                SessionConfig::new(Machine::test_machine(), pol),
            )
            .app_time
        };
        let full = run(Policy::Full);
        let off = run(Policy::FullOff);
        let dynamic = run(Policy::Dynamic);
        let none = run(Policy::None);
        assert!(full > off, "Full {full} !> Full-Off {off}");
        assert!(off > dynamic, "Full-Off {off} !> Dynamic {dynamic}");
        assert!(dynamic >= none, "Dynamic {dynamic} < None {none}?");
    }

    #[test]
    fn hot_functions_carry_the_time() {
        let report = run_session(
            &umt98(2, Umt98Params::test()),
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        );
        let vt = &report.vt;
        let hot_incl: f64 = HOT
            .iter()
            .filter_map(|f| vt.func_id(f))
            .map(|id| vt.stat_of(0, id).incl.as_secs_f64())
            .sum();
        let init_incl: f64 = INIT_STEMS
            .iter()
            .filter_map(|f| vt.func_id(f))
            .map(|id| vt.stat_of(0, id).incl.as_secs_f64())
            .sum();
        assert!(
            hot_incl > init_incl,
            "hot {hot_incl} should outweigh init {init_incl}"
        );
    }
}
