//! Smg98 — a semicoarsening multigrid solver (ASCI kernel, MPI/C).
//!
//! Paper Table 2 and §4.3: 199 functions, of which 62 implement the
//! multigrid solver (the `Subset`/`Dynamic` target). The input sets the
//! per-process data size, so the global problem — and the execution time —
//! grows with the processor count (weak scaling). Smg98's functions are
//! *small and very frequently called* (hypre-style box loops), which is
//! exactly why `Full` static instrumentation slows it down ~7× at 64
//! processors while `Dynamic` tracks `None`.

use std::sync::Arc;

use dynprof_core::{AppCtx, AppMode, AppSpec};
use dynprof_image::{FuncId, FunctionInfo};
use dynprof_mpi::{Sized, Source, Tag, TagSel};

use crate::workload::{
    generate_names, leaf, scaled, synthetic_blocks, work, Decomp3, Grid3, Outputs,
};

/// Number of functions in the Smg98 manifest (paper §4.3).
pub const FUNCTIONS: usize = 199;
/// Size of the solver subset (paper §4.3).
pub const SUBSET: usize = 62;

const SOLVER_STEMS: &[&str] = &[
    "hypre_SMGSolve",
    "hypre_SMGRelax",
    "hypre_SMGResidual",
    "hypre_SMGRestrict",
    "hypre_SMGIntAdd",
    "hypre_SemiInterp",
    "hypre_SemiRestrict",
    "hypre_CyclicReduction",
    "hypre_SMGAxpy",
    "hypre_SMGSetup",
    "hypre_SMGRelaxSetup",
    "hypre_SMGResidualSetup",
    "hypre_SMG2BuildRAPSym",
    "hypre_SMG3BuildRAPSym",
    "hypre_SMGSetupInterpOp",
    "hypre_SMGSetupRestrictOp",
    "hypre_SMGSetupRAPOp",
    "hypre_CycRedSetupCoarseOp",
];

const UTIL_STEMS: &[&str] = &[
    "hypre_StructAxpy",
    "hypre_StructCopy",
    "hypre_StructScale",
    "hypre_StructInnerProd",
    "hypre_StructVectorSetConstantValues",
    "hypre_StructMatvec",
    "hypre_BoxLoop",
    "hypre_BoxGetSize",
    "hypre_BoxGetStrideSize",
    "hypre_ExchangeLocalData",
    "hypre_InitializeCommunication",
    "hypre_FinalizeCommunication",
    "hypre_CommPkgCreate",
    "hypre_CommTypeSort",
    "hypre_StructVectorCreate",
    "hypre_StructVectorDestroy",
];

const DRIVER_STEMS: &[&str] = &[
    "main",
    "HYPRE_StructSMGCreate",
    "HYPRE_StructSMGSetup",
    "HYPRE_StructSMGSolve",
    "HYPRE_StructGridCreate",
    "HYPRE_StructGridAssemble",
    "HYPRE_StructMatrixCreate",
    "HYPRE_StructMatrixAssemble",
    "HYPRE_StructVectorCreate",
    "ReadInput",
    "SetupGrid",
    "SetupMatrix",
    "SetupRhs",
    "PrintTiming",
];

/// Smg98 run parameters.
#[derive(Clone)]
pub struct Smg98Params {
    /// Modelled per-process grid edge (weak scaling input).
    pub per_rank_n: usize,
    /// Base number of V-cycles at one processor; grows with log2(P)
    /// (larger global problems need more cycles to converge).
    pub base_cycles: usize,
    /// Extra V-cycles per doubling of the processor count.
    pub cycles_per_doubling: usize,
    /// Edge of the *real* grid each rank relaxes (genuine numerics).
    pub real_n: usize,
    /// Global scale on modelled leaf-call counts (1.0 = paper scale).
    pub scale: f64,
    /// Result sink.
    pub outputs: Arc<Outputs>,
}

impl Smg98Params {
    /// Paper-scale parameters.
    pub fn paper() -> Smg98Params {
        Smg98Params {
            per_rank_n: 64,
            base_cycles: 12,
            cycles_per_doubling: 3,
            real_n: 10,
            scale: 1.0,
            outputs: Outputs::new(),
        }
    }

    /// Small parameters for unit/integration tests.
    pub fn test() -> Smg98Params {
        Smg98Params {
            per_rank_n: 16,
            base_cycles: 2,
            cycles_per_doubling: 1,
            real_n: 6,
            scale: 0.01,
            outputs: Outputs::new(),
        }
    }

    /// V-cycles for `ranks` processes.
    pub fn cycles(&self, ranks: usize) -> usize {
        self.base_cycles + self.cycles_per_doubling * (ranks.max(1)).ilog2() as usize
    }

    /// Multigrid levels for `ranks` processes (the global grid deepens as
    /// the weak-scaled problem grows).
    pub fn levels(&self, ranks: usize) -> usize {
        let local = (self.per_rank_n.max(4)).ilog2() as usize;
        let global_extra = ((ranks.max(1)).ilog2() as usize).div_ceil(3);
        (local + global_extra).saturating_sub(2).max(3)
    }
}

/// The full Smg98 function manifest.
pub fn manifest() -> Vec<FunctionInfo> {
    let mut names = Vec::with_capacity(FUNCTIONS);
    names.extend(generate_names(SOLVER_STEMS, SUBSET));
    names.extend(generate_names(UTIL_STEMS, 110));
    names.extend(generate_names(DRIVER_STEMS, FUNCTIONS - SUBSET - 110));
    names
        .into_iter()
        .enumerate()
        .map(|(i, n)| {
            let module = if i < SUBSET { "smg" } else { "struct_mv" };
            FunctionInfo::new(n)
                .in_module(module)
                .with_size(192)
                .with_blocks(synthetic_blocks(192))
        })
        .collect()
}

/// The solver subset instrumented by `Subset`/`Dynamic` (62 functions).
pub fn subset() -> Vec<String> {
    generate_names(SOLVER_STEMS, SUBSET)
}

fn halo_exchange(ctx: &AppCtx<'_>, d: &Decomp3, tag: Tag, bytes: usize) {
    let comm = ctx.comm();
    let nbrs = d.neighbours(ctx.rank);
    // Nonblocking (buffered) sends: posting all sends before the receives
    // stays deadlock-free even when a large `per_rank_n` pushes faces over
    // the eager limit (a blocking send would rendezvous and deadlock).
    for &n in &nbrs {
        comm.isend(ctx.p, n, tag, Sized::new(ctx.rank as u64, bytes))
            .wait(ctx.p);
    }
    for &n in &nbrs {
        let _ = comm.recv::<Sized<u64>>(ctx.p, Source::Rank(n), TagSel::Is(tag));
    }
}

struct Fids {
    solve: FuncId,
    setup: FuncId,
    relax: FuncId,
    residual: FuncId,
    restrict: FuncId,
    interp: FuncId,
    cyc_red: FuncId,
    axpy: FuncId,
    inner_prod: FuncId,
    utils: Vec<FuncId>,
}

impl Fids {
    fn resolve(ctx: &AppCtx<'_>) -> Fids {
        Fids {
            solve: ctx.fid("hypre_SMGSolve"),
            setup: ctx.fid("hypre_SMGSetup"),
            relax: ctx.fid("hypre_SMGRelax"),
            residual: ctx.fid("hypre_SMGResidual"),
            restrict: ctx.fid("hypre_SMGRestrict"),
            interp: ctx.fid("hypre_SemiInterp"),
            cyc_red: ctx.fid("hypre_CyclicReduction"),
            axpy: ctx.fid("hypre_StructAxpy"),
            inner_prod: ctx.fid("hypre_StructInnerProd"),
            utils: UTIL_STEMS.iter().map(|n| ctx.fid(n)).collect(),
        }
    }
}

/// Build the Smg98 [`AppSpec`] for an MPI job of `ranks` processes.
pub fn smg98(ranks: usize, params: Smg98Params) -> AppSpec {
    let p = params.clone();
    AppSpec {
        name: "smg98".into(),
        functions: manifest(),
        subset: subset(),
        mode: AppMode::Mpi { ranks },
        body: Arc::new(move |ctx| run_rank(ctx, &p)),
    }
}

/// Modelled flops of one hypre box-loop call (sets the `None` baseline:
/// calls average a few hundred nanoseconds of real work, which is what
/// makes a 1.6 µs active probe pair catastrophic for this code).
const FLOPS_PER_CALL: u64 = 75;
const BYTES_PER_CALL: u64 = 64;

fn run_rank(ctx: &AppCtx<'_>, params: &Smg98Params) {
    let d = Decomp3::new(ctx.nranks);
    let fids = Fids::resolve(ctx);
    let cycles = params.cycles(ctx.nranks);
    let levels = params.levels(ctx.nranks);
    let n3 = (params.per_rank_n * params.per_rank_n * params.per_rank_n) as u64;

    // --- Setup: grid assembly, RAP construction, comm packages. ---------
    ctx.call(fids.setup, || {
        for (i, &u) in fids.utils.iter().enumerate().take(8) {
            leaf(ctx, u, scaled(n3 / 64, params.scale), 120, 96);
            let _ = i;
        }
        // RAP: one matrix triple-product per level.
        work(ctx, scaled(n3 * 24 * levels as u64, params.scale), n3 / 2);
    });

    // --- Solve: V-cycles over the semicoarsened hierarchy. --------------
    let mut grid = Grid3::new(params.real_n);
    let r0 = grid.residual_norm();
    let mut last_res = r0;
    let tag = Tag::user(100);
    // V-cycles are simulated in blocks: a block charges `cb` cycles' worth
    // of calls and work but exchanges halos once, bounding the simulator's
    // event count without changing any per-policy accounting.
    let cb = cycles.min(4) as u64;
    let nblocks = cycles.div_ceil(cb as usize);
    for _cycle_block in 0..nblocks {
        ctx.call(fids.solve, || {
            // Down-sweep.
            for level in 0..levels {
                let pts = (n3 >> level).max(64);
                let reps = scaled(pts / 2, params.scale) * cb;
                ctx.call(fids.relax, || {
                    for &u in &fids.utils[0..4] {
                        leaf(ctx, u, reps, FLOPS_PER_CALL, BYTES_PER_CALL);
                    }
                });
                ctx.call(fids.residual, || {
                    for &u in &fids.utils[4..7] {
                        leaf(ctx, u, reps, FLOPS_PER_CALL, BYTES_PER_CALL);
                    }
                });
                ctx.call(fids.restrict, || {
                    for &u in &fids.utils[7..9] {
                        leaf(ctx, u, reps / 2, FLOPS_PER_CALL, BYTES_PER_CALL);
                    }
                });
                let face = (params.per_rank_n * params.per_rank_n * 8) >> (level / 2);
                halo_exchange(ctx, &d, tag, face.max(256));
            }
            // Coarse solve (cyclic reduction; partially serialized).
            ctx.call(fids.cyc_red, || {
                leaf(ctx, fids.utils[6], scaled(256, params.scale) * cb, 200, 128);
            });
            // Up-sweep.
            for level in (0..levels).rev() {
                let pts = (n3 >> level).max(64);
                let reps = scaled(pts / 2, params.scale) * cb;
                ctx.call(fids.interp, || {
                    for &u in &fids.utils[9..11] {
                        leaf(ctx, u, reps, FLOPS_PER_CALL, BYTES_PER_CALL);
                    }
                });
                ctx.call(fids.relax, || {
                    for &u in &fids.utils[0..4] {
                        leaf(ctx, u, reps, FLOPS_PER_CALL, BYTES_PER_CALL);
                    }
                });
                let face = (params.per_rank_n * params.per_rank_n * 8) >> (level / 2);
                halo_exchange(ctx, &d, tag, face.max(256));
            }
        });
        // Real numerics: relax the real grid once per cycle block.
        last_res = grid.jacobi_step();
        // Convergence check.
        ctx.call(fids.inner_prod, || {
            leaf(ctx, fids.axpy, scaled(n3 / 512, params.scale) * cb, 60, 32);
        });
        let global = ctx
            .comm()
            .allreduce(ctx.p, last_res, |a: f64, b: f64| a.max(b));
        debug_assert!(global.is_finite());
    }
    params.outputs.record(format!("residual0:{}", ctx.rank), r0);
    params
        .outputs
        .record(format!("residual:{}", ctx.rank), last_res);
    params
        .outputs
        .record(format!("checksum:{}", ctx.rank), grid.checksum());
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_core::{run_session, SessionConfig};
    use dynprof_sim::Machine;
    use dynprof_vt::Policy;

    #[test]
    fn manifest_matches_paper_counts() {
        let m = manifest();
        assert_eq!(m.len(), FUNCTIONS);
        let s = subset();
        assert_eq!(s.len(), SUBSET);
        let names: std::collections::HashSet<_> = m.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names.len(), FUNCTIONS, "duplicate names");
        for f in &s {
            assert!(names.contains(f), "subset fn {f} missing from manifest");
        }
    }

    #[test]
    fn runs_and_converges_under_none_policy() {
        let params = Smg98Params::test();
        let outputs = Arc::clone(&params.outputs);
        let app = smg98(4, params);
        let report = run_session(
            &app,
            SessionConfig::new(Machine::test_machine(), Policy::None),
        );
        assert!(report.app_time > dynprof_sim::SimTime::ZERO);
        let r0 = outputs.get("residual0:0").unwrap();
        let r = outputs.get("residual:0").unwrap();
        assert!(r < r0, "residual did not drop: {r0} -> {r}");
        // All ranks solve the same local problem: checksums agree.
        assert_eq!(outputs.get("checksum:0"), outputs.get("checksum:3"));
        // None registers and records no subroutine instrumentation; the
        // MPI wrapper events (always present) are all that remains.
        let trace = report.vt.build_trace();
        assert!(trace.functions.is_empty(), "no VT_funcdef under None");
        assert!(trace.events.iter().all(|e| matches!(
            e,
            dynprof_vt::Event::MpiCall { .. } | dynprof_vt::Event::ConfSync { .. }
        )));
    }

    #[test]
    fn full_records_every_manifest_call() {
        let app = smg98(2, Smg98Params::test());
        let report = run_session(
            &app,
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        );
        assert!(report.trace_bytes > 0);
        let vt = &report.vt;
        for name in ["hypre_SMGSolve", "hypre_StructAxpy", "hypre_SMGSetup"] {
            let id = vt
                .func_id(name)
                .unwrap_or_else(|| panic!("{name} unregistered"));
            assert!(vt.stat_of(0, id).count > 0, "{name} uncounted");
        }
    }

    #[test]
    fn policy_ordering_holds_even_at_test_scale() {
        let times: Vec<_> = [Policy::Full, Policy::FullOff, Policy::None]
            .into_iter()
            .map(|pol| {
                let app = smg98(2, Smg98Params::test());
                run_session(&app, SessionConfig::new(Machine::test_machine(), pol)).app_time
            })
            .collect();
        assert!(
            times[0] > times[1],
            "Full {} !> Full-Off {}",
            times[0],
            times[1]
        );
        assert!(
            times[1] > times[2],
            "Full-Off {} !> None {}",
            times[1],
            times[2]
        );
    }

    #[test]
    fn cycles_and_levels_grow_with_ranks() {
        let p = Smg98Params::paper();
        assert!(p.cycles(64) > p.cycles(1));
        assert!(p.levels(64) > p.levels(1));
        assert_eq!(p.cycles(1), p.base_cycles);
    }
}
