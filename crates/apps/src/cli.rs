//! The dynprof command-line tool (paper §3.3).
//!
//! The paper's invocation is
//!
//! ```text
//! dynprof <stdinfile> <stdoutfile> <timefile> <target> <params> <poe params>
//! ```
//!
//! Ours mirrors it against the simulated machine:
//!
//! ```text
//! dynprof <script|-> <stdout-file|-> <timefile|-> <app> [key=value ...]
//!
//!   app        smg98 | sppm | sweep3d | umt98
//!   cpus=N     processor count                      (default 4)
//!   scale=X    workload scale factor                (default test scale)
//!   machine=M  ibm | ia32 | test                    (default ibm)
//!   seed=N     simulation seed                      (default 42)
//!   policy=P   dynamic | full | full-off | subset | none (default dynamic)
//!   trace=F    also write the trace to F (`.vgvs` = chunk-indexed
//!              store, anything else = legacy flat `VGVT`)
//! ```
//!
//! The script file holds Table-1 commands (`insert-file subset`, `start`,
//! `wait 2`, `remove ...`, `quit`); `-` reads it from stdin.

use std::io::Read;
use std::sync::Arc;

use dynprof_core::{run_session, AdaptiveSettings, AppSpec, Command, SessionConfig, SessionReport};
use dynprof_sim::{Machine, SimTime};
use dynprof_vt::Policy;

use crate::workload::Outputs;

/// Parsed CLI invocation.
#[derive(Clone, Debug)]
pub struct CliArgs {
    /// Script path (`-` = stdin).
    pub script: String,
    /// Session-summary output path (`-` = stdout).
    pub stdout_file: String,
    /// Timefile output path (`-` = stdout).
    pub timefile: String,
    /// Target application name.
    pub app: String,
    /// Processor count.
    pub cpus: usize,
    /// Workload scale (1.0 = paper scale).
    pub scale: f64,
    /// Machine model name.
    pub machine: String,
    /// Simulation seed.
    pub seed: u64,
    /// Instrumentation policy.
    pub policy: Policy,
    /// Optional trace-file output path.
    pub trace: Option<String>,
    /// Overhead budget (percent) for closed-loop adaptive
    /// instrumentation; `None` = no controller.
    pub budget: Option<f64>,
    /// Redundancy-suppression floor in microseconds (0 = off).
    pub floor_us: u64,
    /// Rotate `.vgvs` output into segments of at most this many bytes
    /// (`None` = single file).
    pub rotate_bytes: Option<u64>,
    /// Keep only the newest N segments when rotating (`None` = all).
    pub keep_segments: Option<usize>,
}

/// Everything one invocation produced.
pub struct CliOutput {
    /// The session report.
    pub report: SessionReport,
    /// The rendered summary (what goes to the stdout file).
    pub summary: String,
    /// The rendered timefile.
    pub timefile: String,
    /// Application outputs (numerics).
    pub outputs: Arc<Outputs>,
}

/// The usage text.
pub const USAGE: &str = "\
usage: dynprof <script|-> <stdout-file|-> <timefile|-> <app> [key=value ...]
  app:      smg98 | sppm | sweep3d | umt98
  options:  cpus=N scale=X machine=ibm|ia32|test seed=N
            policy=dynamic|full|full-off|subset|none
            trace=FILE (.vgvs = chunk-indexed store, else legacy VGVT)
            rotate=BYTES (roll .vgvs output into FILE.0000.vgvs segments)
            keep=N (with rotate: retain only the newest N segments)
            budget=PCT (adaptive: keep probe overhead under PCT%)
            floor=US (suppress entry/exit pairs shorter than US microseconds)
";

impl CliArgs {
    /// Parse an argument vector (without the program name).
    pub fn parse(args: &[String]) -> Result<CliArgs, String> {
        if args.len() < 4 {
            return Err(format!("expected at least 4 arguments\n{USAGE}"));
        }
        let mut out = CliArgs {
            script: args[0].clone(),
            stdout_file: args[1].clone(),
            timefile: args[2].clone(),
            app: args[3].clone(),
            cpus: 4,
            scale: f64::NAN, // NaN = use the app's test() scale
            machine: "ibm".into(),
            seed: 42,
            policy: Policy::Dynamic,
            trace: None,
            budget: None,
            floor_us: 0,
            rotate_bytes: None,
            keep_segments: None,
        };
        for kv in &args[4..] {
            let (k, v) = kv
                .split_once('=')
                .ok_or_else(|| format!("bad option {kv:?} (expected key=value)\n{USAGE}"))?;
            match k {
                "cpus" => out.cpus = v.parse().map_err(|_| format!("bad cpus {v:?}"))?,
                "scale" => out.scale = v.parse().map_err(|_| format!("bad scale {v:?}"))?,
                "machine" => out.machine = v.to_string(),
                "seed" => out.seed = v.parse().map_err(|_| format!("bad seed {v:?}"))?,
                "policy" => {
                    out.policy = Policy::parse(v).ok_or_else(|| format!("unknown policy {v:?}"))?
                }
                "trace" => out.trace = Some(v.to_string()),
                "budget" => {
                    let pct: f64 = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                    if pct.is_nan() || pct < 0.0 {
                        return Err(format!("bad budget {v:?} (percent, >= 0)"));
                    }
                    out.budget = Some(pct);
                }
                "floor" => out.floor_us = v.parse().map_err(|_| format!("bad floor {v:?}"))?,
                "rotate" => {
                    let n: u64 = v.parse().map_err(|_| format!("bad rotate {v:?}"))?;
                    if n == 0 {
                        return Err(format!("bad rotate {v:?} (bytes, > 0)"));
                    }
                    out.rotate_bytes = Some(n);
                }
                "keep" => {
                    let n: usize = v.parse().map_err(|_| format!("bad keep {v:?}"))?;
                    if n == 0 {
                        return Err(format!("bad keep {v:?} (segments, > 0)"));
                    }
                    out.keep_segments = Some(n);
                }
                other => return Err(format!("unknown option {other:?}\n{USAGE}")),
            }
        }
        Ok(out)
    }

    /// The machine model.
    pub fn machine_model(&self) -> Result<Machine, String> {
        Ok(match self.machine.as_str() {
            "ibm" => Machine::ibm_power3_colony(),
            "ia32" => Machine::ia32_pentium3_cluster(),
            "test" => Machine::test_machine(),
            other => return Err(format!("unknown machine {other:?} (ibm|ia32|test)")),
        })
    }
}

fn build_app(args: &CliArgs) -> Result<(AppSpec, Arc<Outputs>), String> {
    let scaled = !args.scale.is_nan();
    macro_rules! app {
        ($params:ty, $ctor:path) => {{
            let mut p = if scaled {
                <$params>::paper()
            } else {
                <$params>::test()
            };
            if scaled {
                p.scale = args.scale;
            }
            let o = Arc::clone(&p.outputs);
            (($ctor)(args.cpus, p), o)
        }};
    }
    Ok(match args.app.as_str() {
        "smg98" => app!(crate::Smg98Params, crate::smg98),
        "sppm" => app!(crate::SppmParams, crate::sppm),
        "sweep3d" => app!(crate::Sweep3dParams, crate::sweep3d),
        "umt98" => app!(crate::Umt98Params, crate::umt98),
        other => return Err(format!("unknown application {other:?}")),
    })
}

fn read_script(path: &str) -> Result<Vec<Command>, String> {
    let text = if path == "-" {
        let mut s = String::new();
        std::io::stdin()
            .read_to_string(&mut s)
            .map_err(|e| format!("reading stdin: {e}"))?;
        s
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path:?}: {e}"))?
    };
    Command::parse_script(&text).map_err(|e| format!("script {path:?}: {e}"))
}

/// Run one dynprof invocation. Does not touch the filesystem except to
/// read the script (callers write the outputs — see [`write_outputs`]).
pub fn run_cli(args: &CliArgs) -> Result<CliOutput, String> {
    let (app, outputs) = build_app(args)?;
    let script = read_script(&args.script)?;
    let machine = args.machine_model()?;
    let mut cfg = SessionConfig::new(machine, args.policy).with_seed(args.seed);
    if args.policy == Policy::Dynamic {
        cfg = cfg.with_script(script);
    }
    if let Some(pct) = args.budget {
        cfg = cfg.with_adaptive(AdaptiveSettings::budget(pct));
    }
    if args.floor_us > 0 {
        cfg = cfg.with_suppress_floor(SimTime::from_micros(args.floor_us));
    }
    let report = run_session(&app, cfg);

    let mut summary = String::new();
    summary.push_str(&format!(
        "dynprof: {} on {} CPUs, policy {}, machine {}\n",
        args.app, args.cpus, args.policy, args.machine
    ));
    summary.push_str(&format!("application time : {}\n", report.app_time));
    summary.push_str(&format!("create time      : {}\n", report.create_time));
    summary.push_str(&format!("instrument time  : {}\n", report.instrument_time));
    summary.push_str(&format!(
        "probe pairs      : {}\n",
        report.probe_pairs_installed
    ));
    summary.push_str(&format!(
        "trace volume     : {} bytes\n",
        report.trace_bytes
    ));
    if let Some(ctrl) = &report.controller {
        let series = ctrl.measured_series();
        summary.push_str(&format!(
            "overhead budget  : {:.2}% ({} confsync rounds, final overhead {:.2}%, {} probes off)\n",
            args.budget.unwrap_or(f64::INFINITY),
            series.len(),
            series.last().copied().unwrap_or(0.0),
            ctrl.deactivated_now().len(),
        ));
    }
    if args.floor_us > 0 {
        let suppressed: u64 = (0..app.mode.processes())
            .map(|r| report.vt.suppressed_pairs(r))
            .sum();
        summary.push_str(&format!("suppressed pairs : {suppressed}\n"));
    }
    for w in &report.warnings {
        summary.push_str(&format!("warning          : {w}\n"));
    }
    summary.push('\n');
    let profile = dynprof_analysis::Profile::from_trace(&report.vt.build_trace());
    summary.push_str(&profile.render_top(15));

    let timefile = report.timefile.render();
    Ok(CliOutput {
        report,
        summary,
        timefile,
        outputs,
    })
}

/// Write an invocation's outputs to the requested destinations.
pub fn write_outputs(args: &CliArgs, out: &CliOutput) -> Result<(), String> {
    let emit = |path: &str, text: &str| -> Result<(), String> {
        if path == "-" {
            print!("{text}");
            Ok(())
        } else {
            std::fs::write(path, text).map_err(|e| format!("writing {path:?}: {e}"))
        }
    };
    emit(&args.stdout_file, &out.summary)?;
    emit(&args.timefile, &out.timefile)?;
    if let Some(trace_path) = &args.trace {
        if trace_path.ends_with(".vgvs") && args.rotate_bytes.is_some() {
            // Rotating capture: segments sealed at the byte cap, oldest
            // pruned per keep=N; readable as one store via SegmentSet.
            let rotation = dynprof_analysis::store::RotationPolicy {
                max_bytes: args.rotate_bytes,
                max_events: None,
            };
            let retention = dynprof_analysis::store::RetentionPolicy {
                keep_last: args.keep_segments,
            };
            let stats = dynprof_analysis::store::write_store_from_vt_rotating(
                &out.report.vt,
                trace_path,
                dynprof_analysis::store::StoreOptions::default(),
                rotation,
                retention,
            )
            .map_err(|e| format!("writing store {trace_path:?}: {e}"))?;
            eprintln!(
                "dynprof: {} segments on disk ({} rotated, {} retired), {} bytes",
                stats.segments.len(),
                stats.rotated,
                stats.deleted,
                stats.bytes
            );
        } else if trace_path.ends_with(".vgvs") {
            // Chunk-indexed store, streamed straight from the trace
            // buffers without materializing the merged event array.
            dynprof_analysis::store::write_store_from_vt(
                &out.report.vt,
                trace_path,
                dynprof_analysis::store::StoreOptions::default(),
            )
            .map_err(|e| format!("writing store {trace_path:?}: {e}"))?;
        } else {
            let trace = out.report.vt.build_trace();
            dynprof_analysis::write_trace(&trace, trace_path)
                .map_err(|e| format!("writing trace {trace_path:?}: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strs(v: &[&str]) -> Vec<String> {
        v.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_positional_and_options() {
        let a = CliArgs::parse(&strs(&[
            "script.dp",
            "-",
            "time.txt",
            "sweep3d",
            "cpus=8",
            "seed=7",
            "machine=test",
            "policy=full-off",
        ]))
        .unwrap();
        assert_eq!(a.script, "script.dp");
        assert_eq!(a.cpus, 8);
        assert_eq!(a.seed, 7);
        assert_eq!(a.machine, "test");
        assert_eq!(a.policy, Policy::FullOff);
        assert!(a.scale.is_nan());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CliArgs::parse(&strs(&["a", "b", "c"])).is_err());
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "bogus"])).is_err());
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "cpus=x"])).is_err());
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "policy=nope"])).is_err());
        let a = CliArgs::parse(&strs(&["a", "b", "c", "smg98", "machine=vax"])).unwrap();
        assert!(a.machine_model().is_err());
    }

    #[test]
    fn end_to_end_invocation() {
        let dir = std::env::temp_dir().join("dynprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join(format!("s-{}.dp", std::process::id()));
        std::fs::write(&script, "insert-file subset\nstart\nquit\n").unwrap();
        let trace = dir.join(format!("t-{}.vgvt", std::process::id()));
        let args = CliArgs::parse(&strs(&[
            script.to_str().unwrap(),
            "-",
            "-",
            "sweep3d",
            "cpus=2",
            "seed=5",
        ]))
        .map(|mut a| {
            a.trace = Some(trace.to_str().unwrap().to_string());
            a
        })
        .unwrap();
        let out = run_cli(&args).unwrap();
        assert!(
            out.summary.contains("probe pairs      : 42"),
            "{}",
            out.summary
        );
        assert!(out.summary.contains("sweep"));
        assert!(out.timefile.contains("instrument"));
        // Trace file written and readable.
        write_outputs(
            &CliArgs {
                stdout_file: "-".into(),
                timefile: "-".into(),
                ..args.clone()
            },
            &out,
        )
        .unwrap();
        let back = dynprof_analysis::read_trace(&trace).unwrap();
        assert_eq!(back.program, "sweep3d");
        std::fs::remove_file(&script).ok();
        std::fs::remove_file(&trace).ok();
    }

    #[test]
    fn vgvs_extension_writes_chunk_indexed_store() {
        let dir = std::env::temp_dir().join("dynprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join(format!("vs-{}.dp", std::process::id()));
        std::fs::write(&script, "insert-file subset\nstart\nquit\n").unwrap();
        let store = dir.join(format!("vs-{}.vgvs", std::process::id()));
        let mut args = CliArgs::parse(&strs(&[
            script.to_str().unwrap(),
            "-",
            "-",
            "sweep3d",
            "cpus=2",
            "seed=5",
        ]))
        .unwrap();
        args.trace = Some(store.to_str().unwrap().to_string());
        let out = run_cli(&args).unwrap();
        write_outputs(
            &CliArgs {
                stdout_file: "-".into(),
                timefile: "-".into(),
                ..args.clone()
            },
            &out,
        )
        .unwrap();
        // The store holds the same events as the legacy trace build.
        let mut r = dynprof_analysis::store::StoreReader::open(&store).unwrap();
        let trace = out.report.vt.build_trace();
        assert_eq!(r.info().events as usize, trace.events.len());
        assert_eq!(r.read_all().unwrap().events.len(), trace.events.len());
        std::fs::remove_file(&script).ok();
        std::fs::remove_file(&store).ok();
    }

    #[test]
    fn adaptive_invocation_reports_controller_and_suppression() {
        let dir = std::env::temp_dir().join("dynprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join(format!("a-{}.dp", std::process::id()));
        std::fs::write(&script, "insert-file subset\nstart\nquit\n").unwrap();
        let args = CliArgs::parse(&strs(&[
            script.to_str().unwrap(),
            "-",
            "-",
            "sweep3d",
            "cpus=2",
            "seed=5",
            "machine=test",
            "budget=5",
            "floor=10",
        ]))
        .unwrap();
        assert_eq!(args.budget, Some(5.0));
        assert_eq!(args.floor_us, 10);
        let out = run_cli(&args).unwrap();
        // Same pins as the plain invocation: the adaptive knobs change
        // neither the install path nor the probe count.
        assert!(
            out.summary.contains("probe pairs      : 42"),
            "{}",
            out.summary
        );
        assert!(out.summary.contains("overhead budget  : 5.00%"));
        assert!(out.summary.contains("confsync rounds"));
        assert!(out.summary.contains("suppressed pairs :"));
        assert!(out.report.controller.is_some());
        // Bad values are rejected at parse time.
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "budget=-1"])).is_err());
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "budget=x"])).is_err());
        assert!(CliArgs::parse(&strs(&["a", "b", "c", "smg98", "floor=x"])).is_err());
        std::fs::remove_file(&script).ok();
    }

    #[test]
    fn static_policy_ignores_script_commands() {
        let dir = std::env::temp_dir().join("dynprof-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let script = dir.join(format!("n-{}.dp", std::process::id()));
        std::fs::write(&script, "start\n").unwrap();
        let args = CliArgs::parse(&strs(&[
            script.to_str().unwrap(),
            "-",
            "-",
            "smg98",
            "cpus=2",
            "policy=none",
        ]))
        .unwrap();
        let out = run_cli(&args).unwrap();
        assert_eq!(out.report.probe_pairs_installed, 0);
        std::fs::remove_file(&script).ok();
    }
}
