//! Shared workload machinery for the ASCI kernels.
//!
//! Each kernel keeps two representations of its problem:
//!
//! * a **real** (small) grid on which genuine numerics run, so that the
//!   mini-apps compute verifiable answers; and
//! * a **modelled** (paper-scale) problem whose work is charged to the
//!   virtual clock via the machine's CPU model.
//!
//! The helpers here cover process-grid decomposition, the real stencil
//! computation, and the leaf-call pattern (`call_batch` + modelled work)
//! that reproduces the kernels' instrumentation-relevant call profiles.

use dynprof_core::AppCtx;
use dynprof_image::FuncId;
use dynprof_sim::SimTime;

/// A 3-D process decomposition.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Decomp3 {
    /// Processes along x.
    pub px: usize,
    /// Processes along y.
    pub py: usize,
    /// Processes along z.
    pub pz: usize,
}

impl Decomp3 {
    /// Factor `p` into a near-cubic grid (px ≥ py ≥ pz, px·py·pz = p).
    pub fn new(p: usize) -> Decomp3 {
        assert!(p > 0);
        let mut best = [1, 1, p];
        let mut best_spread = usize::MAX;
        for pz in 1..=p {
            if !p.is_multiple_of(pz) {
                continue;
            }
            let rest = p / pz;
            for py in 1..=rest {
                if !rest.is_multiple_of(py) {
                    continue;
                }
                let mut dims = [rest / py, py, pz];
                dims.sort_unstable();
                let spread = dims[2] - dims[0];
                if spread < best_spread {
                    best_spread = spread;
                    best = dims;
                }
            }
        }
        Decomp3 {
            px: best[2],
            py: best[1],
            pz: best[0],
        }
    }

    /// Coordinates of `rank` in the grid (x fastest).
    pub fn coords(&self, rank: usize) -> (usize, usize, usize) {
        let x = rank % self.px;
        let y = (rank / self.px) % self.py;
        let z = rank / (self.px * self.py);
        (x, y, z)
    }

    /// Rank at coordinates, if in range.
    pub fn rank_at(&self, x: isize, y: isize, z: isize) -> Option<usize> {
        if x < 0
            || y < 0
            || z < 0
            || x >= self.px as isize
            || y >= self.py as isize
            || z >= self.pz as isize
        {
            return None;
        }
        Some(x as usize + (y as usize) * self.px + (z as usize) * self.px * self.py)
    }

    /// The up-to-six face neighbours of `rank`.
    pub fn neighbours(&self, rank: usize) -> Vec<usize> {
        let (x, y, z) = self.coords(rank);
        let (x, y, z) = (x as isize, y as isize, z as isize);
        [
            (x - 1, y, z),
            (x + 1, y, z),
            (x, y - 1, z),
            (x, y + 1, z),
            (x, y, z - 1),
            (x, y, z + 1),
        ]
        .into_iter()
        .filter_map(|(a, b, c)| self.rank_at(a, b, c))
        .collect()
    }
}

/// A 2-D process decomposition (for Sweep3d's KBA sweeps).
pub fn decomp2(p: usize) -> (usize, usize) {
    let mut best = (p, 1);
    for a in 1..=p {
        if p.is_multiple_of(a) {
            let b = p / a;
            if a.abs_diff(b) < best.0.abs_diff(best.1) {
                best = (a.max(b), a.min(b));
            }
        }
    }
    best
}

/// A small real 3-D grid with 7-point Jacobi relaxation — the genuine
/// numerics behind the modelled solvers.
#[derive(Clone, Debug)]
pub struct Grid3 {
    n: usize,
    data: Vec<f64>,
    scratch: Vec<f64>,
    rhs: Vec<f64>,
}

impl Grid3 {
    /// An `n³` grid with a deterministic right-hand side.
    pub fn new(n: usize) -> Grid3 {
        assert!(n >= 3, "grid too small for a stencil");
        let len = n * n * n;
        let rhs = (0..len)
            .map(|i| ((i % 17) as f64 - 8.0) / 17.0)
            .collect::<Vec<_>>();
        Grid3 {
            n,
            data: vec![0.0; len],
            scratch: vec![0.0; len],
            rhs,
        }
    }

    #[inline]
    fn idx(&self, x: usize, y: usize, z: usize) -> usize {
        x + y * self.n + z * self.n * self.n
    }

    /// One weighted-Jacobi step for `-∆u = rhs`; returns the residual
    /// 2-norm after the step.
    pub fn jacobi_step(&mut self) -> f64 {
        let n = self.n;
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = self.idx(x, y, z);
                    let nb = self.data[i - 1]
                        + self.data[i + 1]
                        + self.data[i - n]
                        + self.data[i + n]
                        + self.data[i - n * n]
                        + self.data[i + n * n];
                    self.scratch[i] = (nb + self.rhs[i]) / 6.0;
                }
            }
        }
        std::mem::swap(&mut self.data, &mut self.scratch);
        self.residual_norm()
    }

    /// Residual 2-norm of the interior.
    pub fn residual_norm(&self) -> f64 {
        let n = self.n;
        let mut acc = 0.0;
        for z in 1..n - 1 {
            for y in 1..n - 1 {
                for x in 1..n - 1 {
                    let i = self.idx(x, y, z);
                    let lap = 6.0 * self.data[i]
                        - self.data[i - 1]
                        - self.data[i + 1]
                        - self.data[i - n]
                        - self.data[i + n]
                        - self.data[i - n * n]
                        - self.data[i + n * n];
                    let r = self.rhs[i] - lap;
                    acc += r * r;
                }
            }
        }
        acc.sqrt()
    }

    /// Deterministic checksum of the solution.
    pub fn checksum(&self) -> f64 {
        self.data
            .iter()
            .enumerate()
            .map(|(i, v)| v * ((i % 7) as f64 + 1.0))
            .sum()
    }
}

/// Synthetic basic-block layout for a function of `size` bytes, used by
/// the app manifests so the patch-point CFG analysis has something to
/// chew on. The layout is deliberately hazard-free: a prologue block
/// falling through to a loop head that branches to the tail and back to
/// offset 0 (the patched jump itself — a safe target). Functions too
/// small to hold internal structure get a single straight-line block.
pub fn synthetic_blocks(size: usize) -> Vec<dynprof_image::BasicBlock> {
    use dynprof_image::BasicBlock;
    if size < 32 {
        return vec![BasicBlock::new(0, vec![])];
    }
    vec![
        BasicBlock::new(0, vec![size / 2]),
        BasicBlock::new(size / 2, vec![size / 2, size - 4]),
        BasicBlock::new(size - 4, vec![0]),
    ]
}

/// Execute a hot leaf function `reps` times (batched): the probe machinery
/// fires once with full accounting, and the modelled per-call work is
/// charged to the virtual clock.
pub fn leaf(ctx: &AppCtx<'_>, fid: FuncId, reps: u64, flops_per_call: u64, bytes_per_call: u64) {
    if reps == 0 {
        return;
    }
    ctx.call_batch(fid, reps, |r| {
        let cpu = ctx.p.machine().cpu;
        ctx.p
            .advance(cpu.work(r * flops_per_call, r * bytes_per_call));
    });
}

/// As [`leaf`], from an OpenMP worker thread.
pub fn leaf_on_thread(
    ctx: &AppCtx<'_>,
    wp: &dynprof_sim::Proc,
    thread: usize,
    fid: FuncId,
    reps: u64,
    flops_per_call: u64,
    bytes_per_call: u64,
) {
    if reps == 0 {
        return;
    }
    ctx.call_batch_on_thread(wp, thread, fid, reps, |r| {
        let cpu = wp.machine().cpu;
        wp.advance(cpu.work(r * flops_per_call, r * bytes_per_call));
    });
}

/// Charge modelled serial work directly.
pub fn work(ctx: &AppCtx<'_>, flops: u64, bytes: u64) {
    let cpu = ctx.p.machine().cpu;
    ctx.p.advance(cpu.work(flops, bytes));
}

/// Generate `count` function names from `stems`, cycling with numeric
/// suffixes once the stems run out (manifest filler for the big kernels).
pub fn generate_names(stems: &[&str], count: usize) -> Vec<String> {
    let mut out = Vec::with_capacity(count);
    let mut round = 0;
    while out.len() < count {
        for stem in stems {
            if out.len() == count {
                break;
            }
            if round == 0 {
                out.push((*stem).to_string());
            } else {
                out.push(format!("{stem}_{round}"));
            }
        }
        round += 1;
    }
    out
}

/// A shared sink for application results (residuals, checksums, fluxes),
/// so tests and examples can verify the kernels' real numerics.
#[derive(Default)]
pub struct Outputs {
    vals: parking_lot::Mutex<std::collections::BTreeMap<String, f64>>,
}

impl Outputs {
    /// A fresh sink.
    pub fn new() -> std::sync::Arc<Outputs> {
        std::sync::Arc::new(Outputs::default())
    }

    /// Record `value` under `key` (last write wins).
    pub fn record(&self, key: impl Into<String>, value: f64) {
        self.vals.lock().insert(key.into(), value);
    }

    /// Read a recorded value.
    pub fn get(&self, key: &str) -> Option<f64> {
        self.vals.lock().get(key).copied()
    }

    /// All recorded values.
    pub fn all(&self) -> std::collections::BTreeMap<String, f64> {
        self.vals.lock().clone()
    }
}

/// Scale a `u64` count by the params' scale factor (min 1).
pub fn scaled(count: u64, scale: f64) -> u64 {
    ((count as f64 * scale).round() as u64).max(1)
}

/// Scale a [`SimTime`].
pub fn scaled_time(t: SimTime, scale: f64) -> SimTime {
    t.mul_f64(scale)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decomp3_exact_and_near_cubic() {
        for p in [1, 2, 4, 8, 16, 32, 64, 6, 12, 100] {
            let d = Decomp3::new(p);
            assert_eq!(d.px * d.py * d.pz, p, "p={p}");
            assert!(d.px >= d.py && d.py >= d.pz);
        }
        let d = Decomp3::new(64);
        assert_eq!((d.px, d.py, d.pz), (4, 4, 4));
        let d8 = Decomp3::new(8);
        assert_eq!((d8.px, d8.py, d8.pz), (2, 2, 2));
    }

    #[test]
    fn decomp3_coords_round_trip() {
        let d = Decomp3::new(24);
        for r in 0..24 {
            let (x, y, z) = d.coords(r);
            assert_eq!(d.rank_at(x as isize, y as isize, z as isize), Some(r));
        }
    }

    #[test]
    fn neighbours_are_symmetric() {
        let d = Decomp3::new(12);
        for r in 0..12 {
            for n in d.neighbours(r) {
                assert!(d.neighbours(n).contains(&r), "{r} <-> {n}");
            }
        }
    }

    #[test]
    fn interior_rank_has_six_neighbours() {
        let d = Decomp3::new(27);
        let centre = d.rank_at(1, 1, 1).unwrap();
        assert_eq!(d.neighbours(centre).len(), 6);
        assert_eq!(d.neighbours(0).len(), 3, "corner has three");
    }

    #[test]
    fn decomp2_balanced() {
        assert_eq!(decomp2(8), (4, 2));
        assert_eq!(decomp2(16), (4, 4));
        assert_eq!(decomp2(2), (2, 1));
        assert_eq!(decomp2(1), (1, 1));
        for p in 1..=64 {
            let (a, b) = decomp2(p);
            assert_eq!(a * b, p);
        }
    }

    #[test]
    fn jacobi_reduces_residual() {
        let mut g = Grid3::new(10);
        let r0 = g.residual_norm();
        let mut last = r0;
        for _ in 0..30 {
            last = g.jacobi_step();
        }
        assert!(last < r0 * 0.5, "residual {r0} -> {last} did not converge");
        assert!(g.checksum().is_finite());
    }

    #[test]
    fn jacobi_is_deterministic() {
        let mut a = Grid3::new(8);
        let mut b = Grid3::new(8);
        for _ in 0..5 {
            a.jacobi_step();
            b.jacobi_step();
        }
        assert_eq!(a.checksum(), b.checksum());
    }

    #[test]
    fn generate_names_unique_and_sized() {
        let names = generate_names(&["a", "b", "c"], 10);
        assert_eq!(names.len(), 10);
        let set: std::collections::HashSet<_> = names.iter().collect();
        assert_eq!(set.len(), 10, "duplicates in {names:?}");
        assert_eq!(names[0], "a");
        assert_eq!(names[3], "a_1");
    }

    #[test]
    fn scaled_floors_at_one() {
        assert_eq!(scaled(1000, 0.5), 500);
        assert_eq!(scaled(10, 0.0001), 1);
    }

    #[test]
    fn synthetic_blocks_are_hazard_free() {
        use dynprof_image::{FunctionInfo, MIN_PATCHABLE_BYTES};
        for size in [8, 31, 32, 192, 640, 1024, 2048] {
            let f = FunctionInfo::new("f")
                .with_size(size)
                .with_blocks(synthetic_blocks(size));
            assert_eq!(
                f.branch_into_patch(MIN_PATCHABLE_BYTES),
                None,
                "size {size}"
            );
        }
    }
}
