//! # dynprof-apps — the ASCI kernel benchmarks (paper Table 2)
//!
//! | App     | Type/Lang | Description                      | Functions | Subset |
//! |---------|-----------|----------------------------------|-----------|--------|
//! | Smg98   | MPI/C     | A multigrid solver               | 199       | 62     |
//! | Sppm    | MPI/F77   | A 3D gas dynamics problem        | 22        | 7      |
//! | Sweep3d | MPI/F77   | A neutron transport problem      | 21        | 21     |
//! | Umt98   | OMP/F77   | The Boltzmann transport equation | 44        | 6      |
//!
//! Each kernel is a genuine mini-app: it computes real, verifiable
//! numerics on a small grid while charging paper-scale work to the
//! simulator's virtual clock, and it routes its calls through its process
//! image so that every instrumentation policy (static, configured-off, or
//! dynamically patched) interacts with it exactly as the paper describes.
//!
//! ```
//! use dynprof_apps::{smg98, Smg98Params};
//! use dynprof_core::{run_session, SessionConfig};
//! use dynprof_sim::Machine;
//! use dynprof_vt::Policy;
//!
//! let app = smg98(4, Smg98Params::test());
//! let report = run_session(&app, SessionConfig::new(Machine::test_machine(), Policy::Dynamic));
//! assert!(report.probe_pairs_installed > 0);
//! ```

#![warn(missing_docs)]

pub mod cli;
mod smg98;
mod sppm;
mod sweep3d;
mod umt98;
pub mod workload;

pub use smg98::{manifest as smg98_manifest, smg98, subset as smg98_subset, Smg98Params};
pub use sppm::{manifest as sppm_manifest, sppm, subset as sppm_subset, SppmParams};
pub use sweep3d::{manifest as sweep3d_manifest, subset as sweep3d_subset, sweep3d, Sweep3dParams};
pub use umt98::{manifest as umt98_manifest, subset as umt98_subset, umt98, Umt98Params};

use dynprof_core::AppSpec;
use std::sync::Arc;
use workload::Outputs;

/// The four paper kernels by name, at the given CPU count, with test-scale
/// parameters (used by integration tests and examples).
pub fn test_app(name: &str, cpus: usize) -> Option<AppSpec> {
    Some(match name {
        "smg98" => smg98(cpus, Smg98Params::test()),
        "sppm" => sppm(cpus, SppmParams::test()),
        "sweep3d" => sweep3d(cpus, Sweep3dParams::test()),
        "umt98" => umt98(cpus, Umt98Params::test()),
        _ => return None,
    })
}

/// The four paper kernels by name at paper scale (used by the benchmark
/// harnesses), together with their output sinks.
pub fn paper_app(name: &str, cpus: usize) -> Option<(AppSpec, Arc<Outputs>)> {
    Some(match name {
        "smg98" => {
            let p = Smg98Params::paper();
            let o = Arc::clone(&p.outputs);
            (smg98(cpus, p), o)
        }
        "sppm" => {
            let p = SppmParams::paper();
            let o = Arc::clone(&p.outputs);
            (sppm(cpus, p), o)
        }
        "sweep3d" => {
            let p = Sweep3dParams::paper();
            let o = Arc::clone(&p.outputs);
            (sweep3d(cpus, p), o)
        }
        "umt98" => {
            let p = Umt98Params::paper();
            let o = Arc::clone(&p.outputs);
            (umt98(cpus, p), o)
        }
        _ => return None,
    })
}

/// Paper Table 2, as data.
pub fn table2() -> Vec<(&'static str, &'static str, &'static str)> {
    vec![
        ("Smg98", "MPI/C", "A multigrid solver"),
        ("Sppm", "MPI/F77", "A 3D gas dynamics problem"),
        ("Sweep3d", "MPI/F77", "A neutron transport problem"),
        ("Umt98", "OMP/F77", "The Boltzmann transport equation"),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn app_lookup_by_name() {
        for name in ["smg98", "sppm", "sweep3d", "umt98"] {
            assert!(test_app(name, 2).is_some(), "{name}");
            assert!(paper_app(name, 2).is_some(), "{name}");
        }
        assert!(test_app("nonesuch", 2).is_none());
    }

    #[test]
    fn table2_lists_four_kernels() {
        let t = table2();
        assert_eq!(t.len(), 4);
        assert_eq!(t[0].0, "Smg98");
        assert_eq!(t[3].1, "OMP/F77");
    }
}
