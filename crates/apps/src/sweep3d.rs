//! Sweep3d — a neutron transport problem (Sn wavefront sweep; ASCI
//! kernel, MPI/F77, optionally hybrid MPI/OpenMP as in paper Fig 4).
//!
//! Paper Table 2 and §4.3: 21 functions, all of which the `Dynamic`
//! policy instruments. The input fixes the *global* problem size, so the
//! execution time falls as processors are added (strong scaling). The
//! functions are few and coarse — a `sweep` call processes a whole block
//! of cells — so every instrumentation policy performs alike (Fig 7c):
//! the probe cost disappears into the block granularity.
//!
//! The sweep itself is the classic KBA algorithm: a 2-D process grid
//! pipelines wavefronts for each of the eight octants, receiving inflow
//! faces from upstream neighbours and forwarding outflow downstream.

use std::sync::Arc;

use dynprof_core::{AppCtx, AppMode, AppSpec};
use dynprof_image::FunctionInfo;
use dynprof_mpi::{Sized, Source, Tag, TagSel};
use dynprof_omp::Schedule;

use crate::workload::{decomp2, scaled, synthetic_blocks, work, Outputs};

/// Number of functions in the Sweep3d manifest (paper §4.3).
pub const FUNCTIONS: usize = 21;

const NAMES: [&str; FUNCTIONS] = [
    "main",
    "driver",
    "inner",
    "inner_auto",
    "sweep",
    "source",
    "flux_err",
    "snd_real",
    "rcv_real",
    "octant",
    "initialize",
    "read_input",
    "decomp",
    "task_init",
    "initgeom",
    "initsnc",
    "timers",
    "global_int_sum",
    "global_real_sum",
    "global_real_max",
    "barrier_sync",
];

/// Sweep3d run parameters.
#[derive(Clone)]
pub struct Sweep3dParams {
    /// Global cells per edge (strong scaling input).
    pub global_n: usize,
    /// Cells per k-plane block (KBA pipelining granularity).
    pub k_block: usize,
    /// Angle groups per octant.
    pub angle_groups: usize,
    /// Source/flux iterations.
    pub iterations: usize,
    /// OpenMP threads per MPI process (1 = pure MPI; Fig 4 uses 4).
    pub omp_threads: usize,
    /// Global scale on modelled work.
    pub scale: f64,
    /// Result sink.
    pub outputs: Arc<Outputs>,
}

impl Sweep3dParams {
    /// Paper-scale parameters (150³ global problem).
    pub fn paper() -> Sweep3dParams {
        Sweep3dParams {
            global_n: 150,
            k_block: 25,
            angle_groups: 3,
            iterations: 4,
            omp_threads: 1,
            scale: 1.0,
            outputs: Outputs::new(),
        }
    }

    /// Small parameters for tests.
    pub fn test() -> Sweep3dParams {
        Sweep3dParams {
            global_n: 16,
            k_block: 4,
            angle_groups: 2,
            iterations: 2,
            omp_threads: 1,
            scale: 1.0,
            outputs: Outputs::new(),
        }
    }

    /// Hybrid MPI/OpenMP variant (paper Fig 4: 8 × 4).
    pub fn with_threads(mut self, t: usize) -> Sweep3dParams {
        self.omp_threads = t;
        self
    }
}

/// The full Sweep3d function manifest.
pub fn manifest() -> Vec<FunctionInfo> {
    NAMES
        .iter()
        .map(|n| {
            FunctionInfo::new(*n)
                .in_module("sweep3d")
                .with_size(2048)
                .with_blocks(synthetic_blocks(2048))
        })
        .collect()
}

/// Sweep3d's `Dynamic` policy instruments all 21 functions (paper §4.3).
pub fn subset() -> Vec<String> {
    NAMES.iter().map(|s| s.to_string()).collect()
}

/// Build the Sweep3d [`AppSpec`] for an MPI job of `ranks` processes.
pub fn sweep3d(ranks: usize, params: Sweep3dParams) -> AppSpec {
    let p = params.clone();
    AppSpec {
        name: "sweep3d".into(),
        functions: manifest(),
        subset: subset(),
        mode: AppMode::Mpi { ranks },
        body: Arc::new(move |ctx| run_rank(ctx, &p)),
    }
}

/// Modelled flops per cell-angle update.
const FLOPS_PER_CELL_ANGLE: u64 = 280;

fn run_rank(ctx: &AppCtx<'_>, params: &Sweep3dParams) {
    let (px, py) = decomp2(ctx.nranks);
    let (ix, iy) = (ctx.rank % px, ctx.rank / px);
    let nx = params.global_n.div_ceil(px) as u64;
    let ny = params.global_n.div_ceil(py) as u64;
    let nz = params.global_n as u64;
    let kb = params.k_block as u64;
    let nblocks = nz.div_ceil(kb);

    let f_sweep = ctx.fid("sweep");
    let f_source = ctx.fid("source");
    let f_flux = ctx.fid("flux_err");
    let f_snd = ctx.fid("snd_real");
    let f_rcv = ctx.fid("rcv_real");
    let f_octant = ctx.fid("octant");
    let f_inner = ctx.fid("inner");
    let f_init = ctx.fid("initialize");

    ctx.call(f_init, || {
        work(
            ctx,
            scaled(nx * ny * nz * 12, params.scale),
            nx * ny * nz * 8,
        );
    });

    // Optional OpenMP team: angle groups parallelize within a block.
    let omp = (params.omp_threads > 1).then(|| ctx.make_omp_runtime_with(params.omp_threads));

    // Real numerics: accumulate scalar flux over sweeps on a coarse grid.
    let real_cells = 8usize * 8 * 8;
    let mut phi = vec![0.0f64; real_cells];

    let face_bytes = |n_a: u64, n_b: u64| ((n_a * n_b * kb * 8) as usize).min(48 * 1024);
    let tag = Tag::user(300);
    let comm = ctx.comm();

    for iter in 0..params.iterations {
        ctx.call(f_inner, || {
            ctx.call(f_source, || {
                work(
                    ctx,
                    scaled(nx * ny * nz * 20, params.scale),
                    nx * ny * nz * 8,
                );
            });
            // Eight octants; sweep direction flips per octant.
            for oct in 0..8u32 {
                ctx.call(f_octant, || {});
                let (sx, sy) = ((oct & 1) == 0, (oct & 2) == 0);
                // Upstream/downstream neighbours in the 2-D process grid.
                let up_x = if sx {
                    ix.checked_sub(1)
                } else {
                    (ix + 1 < px).then_some(ix + 1)
                };
                let dn_x = if sx {
                    (ix + 1 < px).then_some(ix + 1)
                } else {
                    ix.checked_sub(1)
                };
                let up_y = if sy {
                    iy.checked_sub(1)
                } else {
                    (iy + 1 < py).then_some(iy + 1)
                };
                let dn_y = if sy {
                    (iy + 1 < py).then_some(iy + 1)
                } else {
                    iy.checked_sub(1)
                };
                let rank_of = |x: usize, y: usize| y * px + x;

                for g in 0..params.angle_groups {
                    for _blk in 0..nblocks {
                        // Inflow faces from upstream (pipelined wavefront).
                        if let Some(x) = up_x {
                            ctx.call(f_rcv, || {
                                let _ = comm.recv::<Sized<u64>>(
                                    ctx.p,
                                    Source::Rank(rank_of(x, iy)),
                                    TagSel::Is(tag),
                                );
                            });
                        }
                        if let Some(y) = up_y {
                            ctx.call(f_rcv, || {
                                let _ = comm.recv::<Sized<u64>>(
                                    ctx.p,
                                    Source::Rank(rank_of(ix, y)),
                                    TagSel::Is(tag),
                                );
                            });
                        }
                        // Compute the block: nx × ny × kb cells, one angle
                        // group — the coarse unit the paper's sweep() is.
                        ctx.call(f_sweep, || {
                            let cells = nx * ny * kb;
                            let flops = scaled(cells * FLOPS_PER_CELL_ANGLE, params.scale);
                            match (&omp, g) {
                                (Some(rt), _) => {
                                    // Angles within the group split across
                                    // the team (Fig 4's hybrid mode).
                                    rt.parallel_for(
                                        ctx.p,
                                        "sweep_angles",
                                        0..rt.nthreads(),
                                        Schedule::static_block(),
                                        |chunk, rctx| {
                                            let share =
                                                flops * chunk.len() as u64 / rt.nthreads() as u64;
                                            let cpu = rctx.proc.machine().cpu;
                                            rctx.proc.advance(cpu.work(share, share / 4));
                                        },
                                    );
                                }
                                (None, _) => {
                                    work(ctx, flops, flops / 4);
                                }
                            }
                        });
                        // Outflow faces downstream.
                        if let Some(x) = dn_x {
                            ctx.call(f_snd, || {
                                comm.send(
                                    ctx.p,
                                    rank_of(x, iy),
                                    tag,
                                    Sized::new(oct as u64, face_bytes(ny, 1)),
                                );
                            });
                        }
                        if let Some(y) = dn_y {
                            ctx.call(f_snd, || {
                                comm.send(
                                    ctx.p,
                                    rank_of(ix, y),
                                    tag,
                                    Sized::new(oct as u64, face_bytes(nx, 1)),
                                );
                            });
                        }
                    }
                }
                // Real numerics: one upwind sweep accumulating flux.
                let dir = if sx { 1.0 } else { -1.0 };
                for (i, v) in phi.iter_mut().enumerate() {
                    *v += dir * ((i % 13) as f64 - 6.0) / (13.0 * (iter + 1) as f64);
                    *v = v.abs();
                }
            }
        });
        // Global convergence test.
        ctx.call(f_flux, || {
            let local: f64 = phi.iter().sum::<f64>() / phi.len() as f64;
            let err = comm.allreduce(ctx.p, local, |a: f64, b: f64| a.max(b));
            debug_assert!(err.is_finite());
        });
        // All ranks are between collectives here — a VT_confsync safe
        // point (live only in adaptive sessions; a no-op otherwise).
        ctx.safe_point();
    }
    if let Some(rt) = &omp {
        rt.shutdown(ctx.p);
    }

    let total_flux: f64 = phi.iter().sum();
    params
        .outputs
        .record(format!("flux:{}", ctx.rank), total_flux);
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_core::{run_session, SessionConfig};
    use dynprof_sim::Machine;
    use dynprof_vt::Policy;

    #[test]
    fn manifest_matches_paper_counts() {
        assert_eq!(manifest().len(), FUNCTIONS);
        assert_eq!(subset().len(), FUNCTIONS, "Dynamic instruments all 21");
    }

    #[test]
    fn strong_scaling_reduces_time() {
        let t2 = run_session(
            &sweep3d(2, Sweep3dParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        )
        .app_time;
        let t8 = run_session(
            &sweep3d(8, Sweep3dParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        )
        .app_time;
        assert!(t8 < t2, "strong scaling failed: 2 ranks {t2}, 8 ranks {t8}");
    }

    #[test]
    fn policies_are_indistinguishable() {
        // Fig 7c: negligible differences between Full and None.
        let t_full = run_session(
            &sweep3d(4, Sweep3dParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        )
        .app_time;
        let t_none = run_session(
            &sweep3d(4, Sweep3dParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        )
        .app_time;
        let ratio = t_full.as_secs_f64() / t_none.as_secs_f64();
        assert!(
            ratio < 1.10,
            "sweep3d Full should be within 10% of None, got {ratio:.3}"
        );
    }

    #[test]
    fn flux_is_positive_and_deterministic() {
        let params = Sweep3dParams::test();
        let outputs = Arc::clone(&params.outputs);
        run_session(
            &sweep3d(4, params),
            SessionConfig::new(Machine::test_machine(), Policy::None),
        );
        let f0 = outputs.get("flux:0").unwrap();
        assert!(f0 > 0.0);
        assert_eq!(outputs.get("flux:0"), outputs.get("flux:3"));
    }

    #[test]
    fn hybrid_mode_runs_with_threads() {
        let params = Sweep3dParams::test().with_threads(4);
        let app = sweep3d(4, params);
        let report = run_session(
            &app,
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        );
        // OpenMP region events present in the trace.
        let trace = report.vt.build_trace();
        let forks = trace
            .events
            .iter()
            .filter(|e| matches!(e, dynprof_vt::Event::OmpFork { .. }))
            .count();
        assert!(forks > 0, "hybrid run produced no OpenMP fork events");
    }
}
