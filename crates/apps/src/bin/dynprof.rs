//! The dynprof tool, invocable as in paper §3.3:
//!
//! ```text
//! dynprof <script|-> <stdout-file|-> <timefile|-> <app> [key=value ...]
//! ```
//!
//! See `dynprof_apps::cli` for the full option list. Example:
//!
//! ```console
//! $ echo 'insert-file subset
//! start
//! quit' | cargo run -p dynprof-apps --bin dynprof -- - - - sweep3d cpus=8
//! ```

use dynprof_apps::cli::{run_cli, write_outputs, CliArgs, USAGE};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--help" || a == "-h") {
        print!("{USAGE}");
        return;
    }
    let parsed = match CliArgs::parse(&args) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("dynprof: {e}");
            std::process::exit(2);
        }
    };
    match run_cli(&parsed).and_then(|out| write_outputs(&parsed, &out)) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("dynprof: {e}");
            std::process::exit(1);
        }
    }
}
