//! Sppm — a 3-D gas dynamics problem (simplified PPM; ASCI kernel, MPI/F77).
//!
//! Paper Table 2 and §4.3: 22 functions, 7 of which perform the majority
//! of the *computation* (the per-pencil hydro kernels). The call *count*,
//! however, is dominated by tiny per-zone helpers (`geteos`, `getflx`,
//! `putflx`), which is why `Full-Off` and `Subset` behave alike while
//! `Full` pays heavily and `Dynamic` tracks `None` — the same pattern as
//! Smg98, but milder because Sppm's functions are coarser on average.

use std::sync::Arc;

use dynprof_core::{AppCtx, AppMode, AppSpec};
use dynprof_image::{FuncId, FunctionInfo};
use dynprof_mpi::{Sized, Source, Tag, TagSel};

use crate::workload::{leaf, scaled, synthetic_blocks, work, Decomp3, Outputs};

/// Number of functions in the Sppm manifest (paper §4.3).
pub const FUNCTIONS: usize = 22;
/// Size of the hot subset (paper §4.3).
pub const SUBSET: usize = 7;

/// The seven hot hydro kernels (the `Subset`/`Dynamic` target).
const HOT: [&str; SUBSET] = [
    "sppm1d", "interf", "difuze", "riemann", "flaten", "parabola", "monot",
];

/// The remaining fifteen functions: drivers, boundary/ghost handling, and
/// the per-zone helpers that dominate the call count.
const REST: [&str; FUNCTIONS - SUBSET] = [
    "main", "runhyd", "setup", "decomp", "init", "bdrys", "ghostx", "ghosty", "ghostz", "geteos",
    "getflx", "putflx", "dump", "timing", "report",
];

/// Sppm run parameters.
#[derive(Clone)]
pub struct SppmParams {
    /// Modelled per-process zones per edge (weak scaling input).
    pub per_rank_n: usize,
    /// Base double-timesteps at one processor.
    pub base_steps: usize,
    /// Extra steps per doubling (the weak-scaled domain needs more).
    pub steps_per_doubling: usize,
    /// Real 1-D advection resolution (genuine numerics).
    pub real_n: usize,
    /// Global scale on modelled call counts.
    pub scale: f64,
    /// Result sink.
    pub outputs: Arc<Outputs>,
}

impl SppmParams {
    /// Paper-scale parameters.
    pub fn paper() -> SppmParams {
        SppmParams {
            per_rank_n: 64,
            base_steps: 6,
            steps_per_doubling: 1,
            real_n: 128,
            scale: 1.0,
            outputs: Outputs::new(),
        }
    }

    /// Small parameters for tests.
    pub fn test() -> SppmParams {
        SppmParams {
            per_rank_n: 16,
            base_steps: 2,
            steps_per_doubling: 0,
            real_n: 32,
            scale: 0.01,
            outputs: Outputs::new(),
        }
    }

    /// Timesteps for `ranks` processes.
    pub fn steps(&self, ranks: usize) -> usize {
        self.base_steps + self.steps_per_doubling * (ranks.max(1)).ilog2() as usize
    }
}

/// The full Sppm function manifest.
pub fn manifest() -> Vec<FunctionInfo> {
    HOT.iter()
        .chain(REST.iter())
        .map(|n| {
            FunctionInfo::new(*n)
                .in_module("sppm")
                .with_size(640)
                .with_blocks(synthetic_blocks(640))
        })
        .collect()
}

/// The hot subset (7 functions).
pub fn subset() -> Vec<String> {
    HOT.iter().map(|s| s.to_string()).collect()
}

/// Build the Sppm [`AppSpec`] for an MPI job of `ranks` processes.
pub fn sppm(ranks: usize, params: SppmParams) -> AppSpec {
    let p = params.clone();
    AppSpec {
        name: "sppm".into(),
        functions: manifest(),
        subset: subset(),
        mode: AppMode::Mpi { ranks },
        body: Arc::new(move |ctx| run_rank(ctx, &p)),
    }
}

/// A real 1-D periodic advection step (first-order upwind): the genuine
/// numerics; total mass is conserved exactly.
fn advect(u: &mut [f64], courant: f64) {
    let n = u.len();
    let prev = u.to_vec();
    for i in 0..n {
        let up = prev[(i + n - 1) % n];
        u[i] = prev[i] - courant * (prev[i] - up);
    }
}

fn ghost_exchange(ctx: &AppCtx<'_>, d: &Decomp3, fid: FuncId, tag: Tag, bytes: usize) {
    ctx.call(fid, || {
        let comm = ctx.comm();
        let nbrs = d.neighbours(ctx.rank);
        // Buffered nonblocking sends: deadlock-free above the eager limit.
        for &n in &nbrs {
            comm.isend(ctx.p, n, tag, Sized::new(0u64, bytes))
                .wait(ctx.p);
        }
        for &n in &nbrs {
            let _ = comm.recv::<Sized<u64>>(ctx.p, Source::Rank(n), TagSel::Is(tag));
        }
    });
}

fn run_rank(ctx: &AppCtx<'_>, params: &SppmParams) {
    let d = Decomp3::new(ctx.nranks);
    let n = params.per_rank_n as u64;
    let zones = n * n * n;
    let pencils = n * n;
    let steps = params.steps(ctx.nranks);

    let hot: Vec<FuncId> = HOT.iter().map(|f| ctx.fid(f)).collect();
    let runhyd = ctx.fid("runhyd");
    let setup = ctx.fid("setup");
    let geteos = ctx.fid("geteos");
    let getflx = ctx.fid("getflx");
    let putflx = ctx.fid("putflx");
    let ghosts = [ctx.fid("ghostx"), ctx.fid("ghosty"), ctx.fid("ghostz")];
    let bdrys = ctx.fid("bdrys");

    // Setup: domain decomposition and initial state.
    ctx.call(setup, || {
        work(ctx, scaled(zones * 20, params.scale), zones * 8);
    });

    // Real state: a periodic density profile, advected each step.
    let mut u: Vec<f64> = (0..params.real_n)
        .map(|i| 1.0 + (i as f64 / params.real_n as f64 * std::f64::consts::TAU).sin() * 0.5)
        .collect();
    let mass0: f64 = u.iter().sum();

    let face_bytes = (n * n * 8) as usize;
    for step in 0..steps {
        ctx.call(runhyd, || {
            for (dir, &gfid) in ghosts.iter().enumerate() {
                // Boundary fill + ghost exchange for this sweep direction.
                ctx.call(bdrys, || {
                    work(ctx, scaled(pencils * 40, params.scale), pencils * 16);
                });
                ghost_exchange(ctx, &d, gfid, Tag::user(200 + dir as u32), face_bytes);
                // The seven hot kernels run once per pencil; each call
                // processes a pencil of n zones (coarse-grained).
                for &h in &hot {
                    leaf(ctx, h, scaled(pencils, params.scale), n * 400, n * 48);
                }
                // Per-zone helpers dominate the call count: tiny work each.
                leaf(ctx, geteos, scaled(zones * 2, params.scale), 220, 48);
                leaf(ctx, getflx, scaled(zones, params.scale), 260, 64);
                leaf(ctx, putflx, scaled(zones, params.scale), 240, 64);
            }
        });
        // Real numerics once per step.
        advect(&mut u, 0.4);
        let _ = step;
    }

    let mass: f64 = u.iter().sum();
    params.outputs.record(format!("mass0:{}", ctx.rank), mass0);
    params.outputs.record(format!("mass:{}", ctx.rank), mass);
    params.outputs.record(
        format!("peak:{}", ctx.rank),
        u.iter().cloned().fold(0.0, f64::max),
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_core::{run_session, SessionConfig};
    use dynprof_sim::Machine;
    use dynprof_vt::Policy;

    #[test]
    fn manifest_matches_paper_counts() {
        let m = manifest();
        assert_eq!(m.len(), FUNCTIONS);
        assert_eq!(subset().len(), SUBSET);
        let names: std::collections::HashSet<_> = m.iter().map(|f| f.name.clone()).collect();
        assert_eq!(names.len(), FUNCTIONS);
    }

    #[test]
    fn advection_conserves_mass() {
        let params = SppmParams::test();
        let outputs = Arc::clone(&params.outputs);
        let app = sppm(4, params);
        run_session(
            &app,
            SessionConfig::new(Machine::test_machine(), Policy::None),
        );
        let m0 = outputs.get("mass0:0").unwrap();
        let m = outputs.get("mass:0").unwrap();
        assert!((m - m0).abs() < 1e-9 * m0.abs(), "mass drift: {m0} -> {m}");
        // Upwind diffusion must not raise the peak.
        assert!(outputs.get("peak:0").unwrap() <= 1.5 + 1e-12);
    }

    #[test]
    fn hot_subset_dominates_time_not_calls() {
        let app = sppm(2, SppmParams::test());
        let report = run_session(
            &app,
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        );
        let vt = &report.vt;
        let hot_calls: u64 = HOT
            .iter()
            .map(|f| vt.stat_of(0, vt.func_id(f).unwrap()).count)
            .sum();
        let helper_calls: u64 = ["geteos", "getflx", "putflx"]
            .iter()
            .map(|f| vt.stat_of(0, vt.func_id(f).unwrap()).count)
            .sum();
        assert!(
            helper_calls > 4 * hot_calls,
            "helpers {helper_calls} should dwarf hot {hot_calls}"
        );
        // Granularity: a hot-kernel call is far coarser than a helper
        // call (that contrast is why Sppm tolerates instrumentation
        // better than Smg98, paper §4.3).
        let per_call = |f: &str| {
            let s = vt.stat_of(0, vt.func_id(f).unwrap());
            s.incl.as_secs_f64() / s.count.max(1) as f64
        };
        let hot_pc: f64 = HOT.iter().map(|f| per_call(f)).sum::<f64>() / HOT.len() as f64;
        let helper_pc: f64 = ["geteos", "getflx", "putflx"]
            .iter()
            .map(|f| per_call(f))
            .sum::<f64>()
            / 3.0;
        assert!(
            hot_pc > 3.0 * helper_pc,
            "hot per-call {hot_pc} should be much coarser than helper {helper_pc}"
        );
    }

    #[test]
    fn dynamic_is_cheaper_than_full() {
        let t_full = run_session(
            &sppm(2, SppmParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::Full),
        )
        .app_time;
        let t_dyn = run_session(
            &sppm(2, SppmParams::test()),
            SessionConfig::new(Machine::test_machine(), Policy::Dynamic),
        )
        .app_time;
        assert!(t_dyn < t_full, "Dynamic {t_dyn} !< Full {t_full}");
    }
}
