//! Instrumentation snippets — the code a dynamic instrumenter inserts.

use std::fmt;
use std::sync::Arc;

use dynprof_sim::{Proc, SimTime};

use crate::func::{FuncId, ProbePointKind};
use crate::ir::SnippetProgram;

/// Unique handle for an inserted snippet (for later removal).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct SnippetId(pub u64);

/// Context passed to a snippet when its probe point fires.
pub struct ProbeCtx<'a> {
    /// The simulated process executing the probe.
    pub proc: &'a Proc,
    /// MPI rank (or 0 for non-MPI processes) of the executing process.
    pub rank: usize,
    /// OpenMP thread id within the process (0 for the initial thread).
    pub thread: usize,
    /// The function whose probe fired.
    pub func: FuncId,
    /// The function's symbol name.
    pub name: &'a str,
    /// Entry or exit.
    pub point: ProbePointKind,
    /// Number of aggregated invocations this firing represents. `1` for a
    /// plain call; `> 1` when the application used batched calls for very
    /// hot leaf functions (the probe fires once but accounts `reps` calls;
    /// see `Image::call_batch`).
    pub reps: u64,
}

/// A block of dynamically-insertable instrumentation code: an executable
/// closure plus the simulated cost of one execution.
///
/// In Dyninst terms this is the *instrumentation primitive* placed in a
/// mini-trampoline (paper Fig 1), e.g. `start_timer()`.
#[derive(Clone)]
pub struct Snippet {
    /// Human-readable snippet name (shows up in diagnostics).
    pub name: Arc<str>,
    /// The instrumentation code itself.
    pub code: Arc<dyn Fn(&ProbeCtx<'_>) + Send + Sync>,
    /// Simulated cost of one execution of the snippet body (the closure's
    /// real cost is measured separately in real-clock mode).
    pub cost: SimTime,
    /// The typed IR this snippet was compiled from, when it was built via
    /// [`SnippetProgram::compile`]. Install-time verification
    /// ([`crate::ir::verify_snippet`]) re-checks this program; opaque
    /// legacy closures carry `None` and pass unverified.
    pub program: Option<Arc<SnippetProgram>>,
    /// The verifier's worst-case cost bound for one `reps = 1` firing,
    /// stamped by [`SnippetProgram::compile`]. Unlike `cost` this is
    /// *derived*, not trusted — the overhead controller prefers it.
    pub derived_cost: Option<SimTime>,
}

impl Snippet {
    /// Create a snippet.
    pub fn new(
        name: impl Into<String>,
        cost: SimTime,
        code: impl Fn(&ProbeCtx<'_>) + Send + Sync + 'static,
    ) -> Snippet {
        Snippet {
            name: Arc::from(name.into()),
            code: Arc::new(code),
            cost,
            program: None,
            derived_cost: None,
        }
    }

    /// A snippet that does nothing and costs nothing (useful in tests and
    /// as the `configuration_break` no-op body).
    pub fn noop(name: impl Into<String>) -> Snippet {
        Snippet::new(name, SimTime::ZERO, |_| {})
    }
}

impl fmt::Debug for Snippet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Snippet")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("derived_cost", &self.derived_cost)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn snippet_executes_closure() {
        let hits = Arc::new(AtomicU64::new(0));
        let h = Arc::clone(&hits);
        let s = Snippet::new("count", SimTime::from_nanos(10), move |ctx| {
            h.fetch_add(ctx.reps, Ordering::Relaxed);
        });
        assert_eq!(s.cost, SimTime::from_nanos(10));
        // Execute outside a simulation by faking a context is not possible
        // (needs a Proc); full execution is covered in image::tests.
        assert_eq!(&*s.name, "count");
        assert_eq!(hits.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn noop_is_free() {
        let s = Snippet::noop("nop");
        assert_eq!(s.cost, SimTime::ZERO);
    }
}
