//! Functions within a program image.

use std::fmt;

/// Identifier of a function within one [`crate::Image`] (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FuncId({})", self.0)
    }
}

impl FuncId {
    /// The dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Static metadata about a function, as a symbol-table reader would see it.
#[derive(Clone, Debug)]
pub struct FunctionInfo {
    /// Symbol name (unique within the image).
    pub name: String,
    /// Source module / object file the function came from.
    pub module: String,
    /// Size of the function body in bytes (drives trampoline bookkeeping:
    /// probe insertion relocates the displaced instruction).
    pub size_bytes: usize,
    /// Whether the Guide compiler statically inserted entry/exit profile
    /// instrumentation into this function (paper §3.1). Dynamic-only
    /// binaries have this `false` everywhere.
    pub statically_instrumented: bool,
}

impl FunctionInfo {
    /// Convenience constructor for a function in the default module.
    pub fn new(name: impl Into<String>) -> FunctionInfo {
        FunctionInfo {
            name: name.into(),
            module: "main".to_string(),
            size_bytes: 256,
            statically_instrumented: false,
        }
    }

    /// Set the module.
    pub fn in_module(mut self, module: impl Into<String>) -> FunctionInfo {
        self.module = module.into();
        self
    }

    /// Set the body size.
    pub fn with_size(mut self, bytes: usize) -> FunctionInfo {
        self.size_bytes = bytes;
        self
    }

    /// Mark as statically instrumented by the Guide compiler.
    pub fn static_instr(mut self, yes: bool) -> FunctionInfo {
        self.statically_instrumented = yes;
        self
    }
}

/// Which probe point of a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbePointKind {
    /// Function entry.
    Entry,
    /// Function exit (all return paths).
    Exit,
}

/// A fully-qualified probe point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbePoint {
    /// The function containing the point.
    pub func: FuncId,
    /// Entry or exit.
    pub kind: ProbePointKind,
}

impl ProbePoint {
    /// Entry point of `func`.
    pub fn entry(func: FuncId) -> ProbePoint {
        ProbePoint {
            func,
            kind: ProbePointKind::Entry,
        }
    }
    /// Exit point of `func`.
    pub fn exit(func: FuncId) -> ProbePoint {
        ProbePoint {
            func,
            kind: ProbePointKind::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let f = FunctionInfo::new("solve")
            .in_module("solver.c")
            .with_size(1024)
            .static_instr(true);
        assert_eq!(f.name, "solve");
        assert_eq!(f.module, "solver.c");
        assert_eq!(f.size_bytes, 1024);
        assert!(f.statically_instrumented);
    }

    #[test]
    fn probe_point_constructors() {
        let f = FuncId(3);
        assert_eq!(
            ProbePoint::entry(f),
            ProbePoint {
                func: f,
                kind: ProbePointKind::Entry
            }
        );
        assert_eq!(ProbePoint::exit(f).kind, ProbePointKind::Exit);
    }
}
