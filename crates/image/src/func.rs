//! Functions within a program image.

use std::fmt;

/// Identifier of a function within one [`crate::Image`] (dense index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FuncId(pub u32);

impl fmt::Debug for FuncId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FuncId({})", self.0)
    }
}

impl FuncId {
    /// The dense index of this function.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// One synthetic basic block of a function's control-flow graph, as a
/// binary analyzer would recover it. Offsets are byte offsets from the
/// function's entry.
///
/// The manifest carries these so the patch-safety verifier can check for
/// the classic *branch-into-patch* hazard: entry instrumentation
/// overwrites the first [`crate::MIN_PATCHABLE_BYTES`] of the prologue
/// with a jump to the base trampoline, so any branch whose target lands
/// *strictly inside* that region (not at offset 0, which hits the
/// patched jump itself and is safe) would execute half-relocated bytes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BasicBlock {
    /// Byte offset of the block's first instruction.
    pub offset: usize,
    /// Byte offsets (within the same function) this block may branch to.
    pub branch_targets: Vec<usize>,
}

impl BasicBlock {
    /// A block at `offset` branching to `targets`.
    pub fn new(offset: usize, targets: Vec<usize>) -> BasicBlock {
        BasicBlock {
            offset,
            branch_targets: targets,
        }
    }
}

/// Static metadata about a function, as a symbol-table reader would see it.
#[derive(Clone, Debug)]
pub struct FunctionInfo {
    /// Symbol name (unique within the image).
    pub name: String,
    /// Source module / object file the function came from.
    pub module: String,
    /// Size of the function body in bytes (drives trampoline bookkeeping:
    /// probe insertion relocates the displaced instruction).
    pub size_bytes: usize,
    /// Whether the Guide compiler statically inserted entry/exit profile
    /// instrumentation into this function (paper §3.1). Dynamic-only
    /// binaries have this `false` everywhere.
    pub statically_instrumented: bool,
    /// Synthetic basic-block layout for patch-point CFG analysis. Empty
    /// means "no CFG information", which the verifier treats as safe —
    /// pre-CFG manifests keep working unchanged.
    pub blocks: Vec<BasicBlock>,
}

impl FunctionInfo {
    /// Convenience constructor for a function in the default module.
    pub fn new(name: impl Into<String>) -> FunctionInfo {
        FunctionInfo {
            name: name.into(),
            module: "main".to_string(),
            size_bytes: 256,
            statically_instrumented: false,
            blocks: Vec::new(),
        }
    }

    /// Set the module.
    pub fn in_module(mut self, module: impl Into<String>) -> FunctionInfo {
        self.module = module.into();
        self
    }

    /// Set the body size.
    pub fn with_size(mut self, bytes: usize) -> FunctionInfo {
        self.size_bytes = bytes;
        self
    }

    /// Mark as statically instrumented by the Guide compiler.
    pub fn static_instr(mut self, yes: bool) -> FunctionInfo {
        self.statically_instrumented = yes;
        self
    }

    /// Attach a synthetic basic-block layout (see [`BasicBlock`]).
    pub fn with_blocks(mut self, blocks: Vec<BasicBlock>) -> FunctionInfo {
        self.blocks = blocks;
        self
    }

    /// First branch target landing strictly inside the first `patch_len`
    /// bytes of the prologue (the branch-into-patch hazard), if any.
    /// Offset 0 is safe — it lands on the patched jump itself. A function
    /// with no CFG information never reports a hazard.
    pub fn branch_into_patch(&self, patch_len: usize) -> Option<usize> {
        self.blocks
            .iter()
            .flat_map(|b| b.branch_targets.iter().copied())
            .find(|&t| t > 0 && t < patch_len)
    }
}

/// Which probe point of a function.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ProbePointKind {
    /// Function entry.
    Entry,
    /// Function exit (all return paths).
    Exit,
}

/// A fully-qualified probe point.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ProbePoint {
    /// The function containing the point.
    pub func: FuncId,
    /// Entry or exit.
    pub kind: ProbePointKind,
}

impl ProbePoint {
    /// Entry point of `func`.
    pub fn entry(func: FuncId) -> ProbePoint {
        ProbePoint {
            func,
            kind: ProbePointKind::Entry,
        }
    }
    /// Exit point of `func`.
    pub fn exit(func: FuncId) -> ProbePoint {
        ProbePoint {
            func,
            kind: ProbePointKind::Exit,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain() {
        let f = FunctionInfo::new("solve")
            .in_module("solver.c")
            .with_size(1024)
            .static_instr(true);
        assert_eq!(f.name, "solve");
        assert_eq!(f.module, "solver.c");
        assert_eq!(f.size_bytes, 1024);
        assert!(f.statically_instrumented);
    }

    #[test]
    fn branch_into_patch_detection() {
        // No CFG info: never a hazard.
        assert_eq!(FunctionInfo::new("f").branch_into_patch(16), None);
        // Target at 0 lands on the patched jump: safe.
        let f = FunctionInfo::new("f").with_blocks(vec![
            BasicBlock::new(0, vec![64]),
            BasicBlock::new(64, vec![0, 128]),
        ]);
        assert_eq!(f.branch_into_patch(16), None);
        // Target at 8 lands mid-patch: hazard.
        let g = FunctionInfo::new("g").with_blocks(vec![
            BasicBlock::new(0, vec![32]),
            BasicBlock::new(32, vec![8]),
        ]);
        assert_eq!(g.branch_into_patch(16), Some(8));
        // Same target is fine once the patch is shorter than it.
        assert_eq!(g.branch_into_patch(8), None);
    }

    #[test]
    fn probe_point_constructors() {
        let f = FuncId(3);
        assert_eq!(
            ProbePoint::entry(f),
            ProbePoint {
                func: f,
                kind: ProbePointKind::Entry
            }
        );
        assert_eq!(ProbePoint::exit(f).kind, ProbePointKind::Exit);
    }
}
