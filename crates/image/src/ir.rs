//! The typed snippet IR and its static verifier (paper §5 safety story).
//!
//! A [`crate::Snippet`] used to be an opaque `Arc<dyn Fn>` plus a
//! *trusted, hand-declared* cost — the probe-safety analyzer could check
//! sizes and budgets but never the instrumentation code itself. This
//! module replaces that with a small Dyninst-style mini-AST
//! ([`SnippetProgram`]): probe-context reads, load/store to a declared
//! per-probe data region, integer arithmetic, start/stop timer, trace
//! emission, bounded loops, conditionals, and calls into a whitelisted
//! [`IntrinsicTable`] with per-intrinsic cost.
//!
//! Two consumers share the IR:
//!
//! * [`SnippetProgram::compile`] lowers a program to today's `Snippet`
//!   closure (a small interpreter), so the fire path through
//!   [`crate::Image::call`] is unchanged;
//! * [`SnippetProgram::verify`] abstractly interprets it **before any
//!   install**, computing a *derived* worst-case cost bound (loop bound ×
//!   body cost, branch maxima — this replaces the trusted `cost` field),
//!   a side-effect summary (stores stay inside the declared region,
//!   timers balance on every path, no emission after the final stop) and
//!   termination (loop trip counts statically bounded, no recursion
//!   through intrinsics).
//!
//! The DPCL daemons run [`verify_snippet`] before `Image::try_insert`
//! and reject programs that fail with a typed error; opaque legacy
//! closures (no attached program) pass through unverified, exactly as
//! before this module existed.
//!
//! # Cost model
//!
//! Every primitive operation has a fixed modelled cost ([`STORE_COST`],
//! [`EMIT_COST`], [`TIMER_COST`], [`LOOP_ITER_COST`], [`BRANCH_COST`]),
//! charged by the interpreter per executed operation × `ctx.reps`.
//! Intrinsics carry their own cost plus a [`ChargeMode`]: `Charged`
//! intrinsics are charged by the interpreter; `Internal` intrinsics
//! charge the virtual clock themselves (e.g. `VT_begin`, whose charge
//! depends on the activation table) and their declared cost is used only
//! as the verifier's upper bound. This is what keeps an IR-compiled
//! `VT_begin` byte-identical on the timeline to the hand-written closure
//! it replaces: the snippet's `cost` field stays zero and the library
//! charges itself, while the *derived* bound still covers the worst case.

use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use dynprof_sim::SimTime;

use crate::func::ProbePointKind;
use crate::snippet::{ProbeCtx, Snippet};

/// Modelled cost of one executed `Store` (a mini-trampoline register
/// save + memory write).
pub const STORE_COST: SimTime = SimTime::from_nanos(6);
/// Modelled cost of one executed `Emit` (format + append one trace
/// record to the probe's local buffer).
pub const EMIT_COST: SimTime = SimTime::from_nanos(40);
/// Modelled cost of one `StartTimer`/`StopTimer` (a clock read).
pub const TIMER_COST: SimTime = SimTime::from_nanos(25);
/// Modelled per-iteration loop overhead (decrement + conditional jump).
pub const LOOP_ITER_COST: SimTime = SimTime::from_nanos(2);
/// Modelled cost of one conditional branch.
pub const BRANCH_COST: SimTime = SimTime::from_nanos(2);
/// Largest statically-provable loop trip count the verifier accepts. A
/// snippet that iterates more than this at a probe point has become the
/// application, not its instrumentation.
pub const MAX_LOOP_TRIPS: u64 = 4096;

// ---------------------------------------------------------------------------
// The AST
// ---------------------------------------------------------------------------

/// Probe-context fields a snippet expression may read.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CtxField {
    /// MPI rank of the executing process.
    Rank,
    /// OpenMP thread id.
    Thread,
    /// Dense index of the fired function.
    FuncIndex,
    /// Aggregated invocations this firing represents (≥ 1).
    Reps,
    /// 1 at an entry probe point, 0 at an exit point.
    IsEntry,
}

/// Binary integer operators.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BinOp {
    /// Saturating addition.
    Add,
    /// Saturating subtraction.
    Sub,
    /// Saturating multiplication.
    Mul,
    /// Minimum.
    Min,
    /// Maximum.
    Max,
}

/// An integer expression (all values are `i64`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Expr {
    /// A constant.
    Const(i64),
    /// A probe-context field.
    Ctx(CtxField),
    /// The value of a data-region slot (index is itself an expression).
    Load(Box<Expr>),
    /// A binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
}

impl Expr {
    /// Convenience constructor for a binary operation.
    pub fn bin(op: BinOp, a: Expr, b: Expr) -> Expr {
        Expr::Bin(op, Box::new(a), Box::new(b))
    }

    /// Convenience constructor for a slot load with a constant index.
    pub fn load(slot: i64) -> Expr {
        Expr::Load(Box::new(Expr::Const(slot)))
    }
}

/// A statement of the snippet mini-AST.
#[derive(Clone, Debug)]
pub enum Stmt {
    /// `region[slot] = value`.
    Store {
        /// Slot index expression (verified against the declared region).
        slot: Expr,
        /// Value to store.
        value: Expr,
    },
    /// Start the probe timer (push a clock reading).
    StartTimer,
    /// Stop the probe timer (pop and accumulate the elapsed interval).
    StopTimer,
    /// Append a `(tag, value)` trace record to the probe's buffer.
    Emit {
        /// Record tag (event kind).
        tag: u32,
        /// Record payload.
        value: Expr,
    },
    /// Call intrinsic `#n` of the program's [`IntrinsicTable`].
    Call(usize),
    /// Execute `body` `trips` times; the verifier requires a static
    /// upper bound ≤ [`MAX_LOOP_TRIPS`].
    Loop {
        /// Trip-count expression.
        trips: Expr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Execute `then_body` when `cond ≠ 0`, else `else_body`.
    If {
        /// Condition expression.
        cond: Expr,
        /// Taken when `cond ≠ 0`.
        then_body: Vec<Stmt>,
        /// Taken when `cond = 0`.
        else_body: Vec<Stmt>,
    },
}

// ---------------------------------------------------------------------------
// Intrinsics
// ---------------------------------------------------------------------------

/// Who charges the virtual clock for an intrinsic's execution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ChargeMode {
    /// The interpreter charges `cost × reps` before running the body.
    Charged,
    /// The body charges the clock itself (runtime-library calls whose
    /// real charge is data-dependent, e.g. `VT_begin`); the declared
    /// `cost` is used only as the verifier's worst-case bound.
    Internal,
}

/// One whitelisted runtime call a snippet may make.
#[derive(Clone)]
pub struct Intrinsic {
    /// Name used in diagnostics and verifier messages.
    pub name: Arc<str>,
    /// Worst-case cost of one execution (the verifier's bound; also the
    /// interpreter's charge when `charge` is [`ChargeMode::Charged`]).
    pub cost: SimTime,
    /// Charging discipline.
    pub charge: ChargeMode,
    /// Indices of table entries this intrinsic may itself invoke — the
    /// verifier rejects programs that can recurse through the table.
    pub may_call: Vec<usize>,
    /// The executable body.
    pub run: Arc<dyn Fn(&ProbeCtx<'_>) + Send + Sync>,
}

impl Intrinsic {
    /// An interpreter-charged intrinsic.
    pub fn charged(
        name: impl Into<String>,
        cost: SimTime,
        run: impl Fn(&ProbeCtx<'_>) + Send + Sync + 'static,
    ) -> Intrinsic {
        Intrinsic {
            name: Arc::from(name.into()),
            cost,
            charge: ChargeMode::Charged,
            may_call: Vec::new(),
            run: Arc::new(run),
        }
    }

    /// A self-charging intrinsic (see [`ChargeMode::Internal`]).
    pub fn internal(
        name: impl Into<String>,
        cost: SimTime,
        run: impl Fn(&ProbeCtx<'_>) + Send + Sync + 'static,
    ) -> Intrinsic {
        Intrinsic {
            charge: ChargeMode::Internal,
            ..Intrinsic::charged(name, cost, run)
        }
    }

    /// Declare which table entries this intrinsic may itself call.
    pub fn calls(mut self, deps: Vec<usize>) -> Intrinsic {
        self.may_call = deps;
        self
    }
}

impl fmt::Debug for Intrinsic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Intrinsic")
            .field("name", &self.name)
            .field("cost", &self.cost)
            .field("charge", &self.charge)
            .field("may_call", &self.may_call)
            .finish()
    }
}

/// The whitelist of runtime calls available to a program.
#[derive(Debug, Default)]
pub struct IntrinsicTable {
    entries: Vec<Intrinsic>,
}

impl IntrinsicTable {
    /// A table with the given entries.
    pub fn new(entries: Vec<Intrinsic>) -> Arc<IntrinsicTable> {
        Arc::new(IntrinsicTable { entries })
    }

    /// The empty table (pure data-region programs).
    pub fn empty() -> Arc<IntrinsicTable> {
        Arc::new(IntrinsicTable::default())
    }

    /// Entry `#i`, if present.
    pub fn get(&self, i: usize) -> Option<&Intrinsic> {
        self.entries.get(i)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Indices on a `may_call` cycle reachable from `start` (empty =
    /// acyclic from there).
    fn cycle_from(&self, start: usize) -> Option<usize> {
        // Iterative DFS with tricolor marking over the may_call graph.
        #[derive(Clone, Copy, PartialEq)]
        enum Color {
            White,
            Grey,
            Black,
        }
        let mut color = vec![Color::White; self.entries.len()];
        let mut stack = vec![(start, 0usize)];
        if start >= self.entries.len() {
            return None;
        }
        color[start] = Color::Grey;
        while let Some(&mut (node, ref mut edge)) = stack.last_mut() {
            let deps = &self.entries[node].may_call;
            if *edge < deps.len() {
                let next = deps[*edge];
                *edge += 1;
                if next >= self.entries.len() {
                    continue; // dangling edge: reported as UnknownIntrinsic
                }
                match color[next] {
                    Color::Grey => return Some(next),
                    Color::White => {
                        color[next] = Color::Grey;
                        stack.push((next, 0));
                    }
                    Color::Black => {}
                }
            } else {
                color[node] = Color::Black;
                stack.pop();
            }
        }
        None
    }
}

// ---------------------------------------------------------------------------
// The program
// ---------------------------------------------------------------------------

/// A typed, statically-verifiable instrumentation program.
#[derive(Clone, Debug)]
pub struct SnippetProgram {
    /// Snippet name (shows up in diagnostics, same as `Snippet::name`).
    pub name: String,
    /// Number of `i64` slots in the per-probe data region. All stores
    /// and loads are verified against this bound.
    pub region_slots: usize,
    /// The program body.
    pub body: Vec<Stmt>,
    /// Whitelisted runtime calls.
    pub intrinsics: Arc<IntrinsicTable>,
}

impl SnippetProgram {
    /// Build a program.
    pub fn new(
        name: impl Into<String>,
        region_slots: usize,
        body: Vec<Stmt>,
        intrinsics: Arc<IntrinsicTable>,
    ) -> Arc<SnippetProgram> {
        Arc::new(SnippetProgram {
            name: name.into(),
            region_slots,
            body,
            intrinsics,
        })
    }

    /// Statically verify the program; see [`verify`].
    pub fn verify(&self) -> VerifyReport {
        verify(self)
    }

    /// Verify, then lower to an executable [`Snippet`].
    ///
    /// The returned snippet's `cost` field is **zero** — primitive-op
    /// charges happen inside the interpreter (and `Internal` intrinsics
    /// charge themselves), so the probe-point dispatch accounting in
    /// [`crate::Image`] is unchanged. The verifier's worst-case bound is stamped into
    /// `Snippet::derived_cost` for the analyzer and the overhead
    /// controller.
    ///
    /// Returns the failing [`VerifyReport`] if verification rejects the
    /// program.
    pub fn compile(self: &Arc<Self>) -> Result<Snippet, VerifyReport> {
        let (s, _) = self.compile_with_state()?;
        Ok(s)
    }

    /// Like [`SnippetProgram::compile`], also returning the runtime
    /// state handle (data region, emitted records, timer totals) for
    /// inspection by tests and tools.
    pub fn compile_with_state(
        self: &Arc<Self>,
    ) -> Result<(Snippet, Arc<ProgramState>), VerifyReport> {
        let report = self.verify();
        if !report.ok() {
            return Err(report);
        }
        Ok(self.lower(Some(report.derived_cost)))
    }

    /// Lower **without verifying** — the snippet still carries the
    /// program, so install-time verification ([`verify_snippet`]) will
    /// reject it at the daemon. Exists so tests and negative fixtures
    /// can exercise that rejection path; `derived_cost` stays unset.
    pub fn compile_unchecked(self: &Arc<Self>) -> Snippet {
        self.lower(None).0
    }

    fn lower(self: &Arc<Self>, derived: Option<SimTime>) -> (Snippet, Arc<ProgramState>) {
        let state = Arc::new(ProgramState {
            data: Mutex::new(vec![0; self.region_slots]),
            emitted: Mutex::new(Vec::new()),
            timer_stack: Mutex::new(Vec::new()),
            timer_total: Mutex::new(SimTime::ZERO),
        });
        let code: Arc<dyn Fn(&ProbeCtx<'_>) + Send + Sync> =
            if let Some(slot) = counter_idiom(&self.body) {
                // Fused counting fast path: one lock, one saturating
                // add — the same machine code a hand-written counting
                // closure compiles to, with the same STORE charge the
                // interpreter would make.
                let st = Arc::clone(&state);
                Arc::new(move |ctx| {
                    ctx.proc.advance(STORE_COST * ctx.reps);
                    let mut d = st.data.lock();
                    if let Some(s) = d.get_mut(slot) {
                        *s = s.saturating_add(ctx.reps as i64);
                    }
                })
            } else if let [Stmt::Call(i)] = self.body.as_slice() {
                // Single-intrinsic body (the VT begin/end shape): call
                // straight through without touching program state.
                match self.intrinsics.get(*i) {
                    Some(intr) => {
                        let intr = intr.clone();
                        Arc::new(move |ctx| {
                            if intr.charge == ChargeMode::Charged {
                                ctx.proc.advance(intr.cost * ctx.reps);
                            }
                            (intr.run)(ctx);
                        })
                    }
                    None => Arc::new(|_| {}),
                }
            } else {
                let prog = Arc::clone(self);
                let st = Arc::clone(&state);
                Arc::new(move |ctx| exec_block(&prog.body, &prog.intrinsics, &st, ctx))
            };
        let snippet = Snippet {
            name: Arc::from(self.name.as_str()),
            cost: SimTime::ZERO,
            code,
            program: Some(Arc::clone(self)),
            derived_cost: derived,
        };
        (snippet, state)
    }
}

/// Recognize the counting idiom `region[s] = region[s] + reps` (a
/// single-statement body) so [`SnippetProgram::compile`] can lower it to
/// a direct closure instead of the tree-walking interpreter.
fn counter_idiom(body: &[Stmt]) -> Option<usize> {
    let [Stmt::Store {
        slot: Expr::Const(s),
        value: Expr::Bin(BinOp::Add, a, b),
    }] = body
    else {
        return None;
    };
    let (Expr::Load(idx), Expr::Ctx(CtxField::Reps)) = (&**a, &**b) else {
        return None;
    };
    let Expr::Const(s2) = &**idx else {
        return None;
    };
    (s2 == s).then(|| usize::try_from(*s).ok()).flatten()
}

/// Runtime state of one compiled program instance: the per-probe data
/// region plus observability for tests and tools.
pub struct ProgramState {
    data: Mutex<Vec<i64>>,
    emitted: Mutex<Vec<(u32, i64)>>,
    timer_stack: Mutex<Vec<SimTime>>,
    timer_total: Mutex<SimTime>,
}

impl ProgramState {
    /// Value of data-region slot `i` (0 if out of range).
    pub fn slot(&self, i: usize) -> i64 {
        self.data.lock().get(i).copied().unwrap_or(0)
    }

    /// All `(tag, value)` records emitted so far.
    pub fn emitted(&self) -> Vec<(u32, i64)> {
        self.emitted.lock().clone()
    }

    /// Total time accumulated across balanced timer pairs.
    pub fn timer_total(&self) -> SimTime {
        *self.timer_total.lock()
    }
}

// ---------------------------------------------------------------------------
// The interpreter (the compiled fire path)
// ---------------------------------------------------------------------------

fn eval(e: &Expr, data: &[i64], ctx: &ProbeCtx<'_>) -> i64 {
    match e {
        Expr::Const(c) => *c,
        Expr::Ctx(f) => match f {
            CtxField::Rank => ctx.rank as i64,
            CtxField::Thread => ctx.thread as i64,
            CtxField::FuncIndex => ctx.func.index() as i64,
            CtxField::Reps => ctx.reps as i64,
            CtxField::IsEntry => i64::from(ctx.point == ProbePointKind::Entry),
        },
        Expr::Load(idx) => {
            let i = eval(idx, data, ctx);
            usize::try_from(i)
                .ok()
                .and_then(|i| data.get(i).copied())
                .unwrap_or(0)
        }
        Expr::Bin(op, a, b) => {
            let (a, b) = (eval(a, data, ctx), eval(b, data, ctx));
            match op {
                BinOp::Add => a.saturating_add(b),
                BinOp::Sub => a.saturating_sub(b),
                BinOp::Mul => a.saturating_mul(b),
                BinOp::Min => a.min(b),
                BinOp::Max => a.max(b),
            }
        }
    }
}

fn exec_block(body: &[Stmt], intrinsics: &IntrinsicTable, st: &ProgramState, ctx: &ProbeCtx<'_>) {
    let reps = ctx.reps;
    for stmt in body {
        match stmt {
            Stmt::Store { slot, value } => {
                ctx.proc.advance(STORE_COST * reps);
                let mut data = st.data.lock();
                let i = eval(slot, &data, ctx);
                let v = eval(value, &data, ctx);
                if let Ok(i) = usize::try_from(i) {
                    if let Some(s) = data.get_mut(i) {
                        *s = v;
                    }
                }
            }
            Stmt::StartTimer => {
                ctx.proc.advance(TIMER_COST * reps);
                st.timer_stack.lock().push(ctx.proc.now());
            }
            Stmt::StopTimer => {
                ctx.proc.advance(TIMER_COST * reps);
                if let Some(t0) = st.timer_stack.lock().pop() {
                    *st.timer_total.lock() += ctx.proc.now().saturating_sub(t0);
                }
            }
            Stmt::Emit { tag, value } => {
                ctx.proc.advance(EMIT_COST * reps);
                let v = eval(value, &st.data.lock(), ctx);
                st.emitted.lock().push((*tag, v));
            }
            Stmt::Call(i) => {
                if let Some(intr) = intrinsics.get(*i) {
                    if intr.charge == ChargeMode::Charged {
                        ctx.proc.advance(intr.cost * reps);
                    }
                    (intr.run)(ctx);
                }
            }
            Stmt::Loop { trips, body } => {
                let n = eval(trips, &st.data.lock(), ctx).clamp(0, MAX_LOOP_TRIPS as i64);
                for _ in 0..n {
                    ctx.proc.advance(LOOP_ITER_COST * reps);
                    exec_block(body, intrinsics, st, ctx);
                }
            }
            Stmt::If {
                cond,
                then_body,
                else_body,
            } => {
                ctx.proc.advance(BRANCH_COST * reps);
                let taken = eval(cond, &st.data.lock(), ctx) != 0;
                exec_block(
                    if taken { then_body } else { else_body },
                    intrinsics,
                    st,
                    ctx,
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The abstract interpreter (the verifier)
// ---------------------------------------------------------------------------

/// A closed interval over `i64` — the verifier's value domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Interval {
    /// Lower bound (inclusive).
    pub lo: i64,
    /// Upper bound (inclusive).
    pub hi: i64,
}

impl Interval {
    /// The unknown value.
    pub const TOP: Interval = Interval {
        lo: i64::MIN,
        hi: i64::MAX,
    };

    /// The singleton interval.
    pub fn exact(c: i64) -> Interval {
        Interval { lo: c, hi: c }
    }

    fn of(lo: i64, hi: i64) -> Interval {
        Interval { lo, hi }
    }

    fn add(self, o: Interval) -> Interval {
        Interval::of(self.lo.saturating_add(o.lo), self.hi.saturating_add(o.hi))
    }

    fn sub(self, o: Interval) -> Interval {
        Interval::of(self.lo.saturating_sub(o.hi), self.hi.saturating_sub(o.lo))
    }

    fn mul(self, o: Interval) -> Interval {
        let ps = [
            self.lo.saturating_mul(o.lo),
            self.lo.saturating_mul(o.hi),
            self.hi.saturating_mul(o.lo),
            self.hi.saturating_mul(o.hi),
        ];
        Interval::of(
            ps.iter().copied().min().expect("4 products"),
            ps.iter().copied().max().expect("4 products"),
        )
    }

    fn min(self, o: Interval) -> Interval {
        Interval::of(self.lo.min(o.lo), self.hi.min(o.hi))
    }

    fn max(self, o: Interval) -> Interval {
        Interval::of(self.lo.max(o.lo), self.hi.max(o.hi))
    }
}

/// One verification failure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum VerifyError {
    /// A store whose slot interval escapes the declared region.
    OobWrite {
        /// Static slot-index bounds.
        slot: Interval,
        /// Declared region size.
        region_slots: usize,
    },
    /// A load whose slot interval escapes the declared region.
    OobRead {
        /// Static slot-index bounds.
        slot: Interval,
        /// Declared region size.
        region_slots: usize,
    },
    /// Timers do not balance: a stop without a start, a start never
    /// stopped, branch arms leaving different depths, or a loop body
    /// with a net timer effect.
    UnbalancedTimer {
        /// Which invariant failed.
        detail: String,
    },
    /// A trace record emitted after the final timer stop.
    EmitAfterStop,
    /// A loop whose trip count has no static bound ≤ [`MAX_LOOP_TRIPS`].
    UnboundedLoop {
        /// The statically-derived upper bound, if any finite one exists.
        upper: Option<u64>,
    },
    /// The program can recurse through the intrinsic table.
    RecursiveIntrinsic {
        /// Name of an intrinsic on the cycle.
        name: String,
    },
    /// A call to an intrinsic index not in the table.
    UnknownIntrinsic {
        /// The out-of-table index.
        index: usize,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::OobWrite { slot, region_slots } => write!(
                f,
                "store to slot [{}, {}] escapes the {region_slots}-slot data region",
                slot.lo, slot.hi
            ),
            VerifyError::OobRead { slot, region_slots } => write!(
                f,
                "load from slot [{}, {}] escapes the {region_slots}-slot data region",
                slot.lo, slot.hi
            ),
            VerifyError::UnbalancedTimer { detail } => {
                write!(f, "unbalanced timer: {detail}")
            }
            VerifyError::EmitAfterStop => {
                write!(f, "trace emission after the final timer stop")
            }
            VerifyError::UnboundedLoop { upper: Some(n) } => write!(
                f,
                "loop bound {n} exceeds the {MAX_LOOP_TRIPS}-trip verifier limit"
            ),
            VerifyError::UnboundedLoop { upper: None } => {
                write!(f, "loop trip count has no static bound")
            }
            VerifyError::RecursiveIntrinsic { name } => {
                write!(f, "intrinsic {name:?} can recurse through the table")
            }
            VerifyError::UnknownIntrinsic { index } => {
                write!(f, "call to unknown intrinsic #{index}")
            }
        }
    }
}

/// The verifier's result: the derived worst-case cost bound plus every
/// violated invariant (empty = the program is safe to install).
#[derive(Clone, Debug)]
pub struct VerifyReport {
    /// Worst-case simulated cost of one firing with `reps = 1` (multiply
    /// by the firing's `reps` for batched calls). Covers `Internal`
    /// intrinsics at their declared bound.
    pub derived_cost: SimTime,
    /// Violations found (empty means the program verified).
    pub errors: Vec<VerifyError>,
    /// Number of `Store` statements (side-effect summary).
    pub stores: usize,
    /// Number of `Emit` statements (side-effect summary).
    pub emits: usize,
    /// Number of `Call` statements (side-effect summary).
    pub calls: usize,
    /// Maximum nested timer depth on any path.
    pub max_timer_depth: u32,
}

impl VerifyReport {
    /// True when no invariant was violated.
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

impl fmt::Display for VerifyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.ok() {
            write!(
                f,
                "verified: worst-case {}ns, {} stores, {} emits, {} calls",
                self.derived_cost.as_nanos(),
                self.stores,
                self.emits,
                self.calls
            )
        } else {
            let msgs: Vec<String> = self.errors.iter().map(|e| e.to_string()).collect();
            write!(f, "{}", msgs.join("; "))
        }
    }
}

struct AbsCtx<'a> {
    prog: &'a SnippetProgram,
    errors: Vec<VerifyError>,
    stores: usize,
    emits: usize,
    calls: usize,
    max_depth: u32,
}

#[derive(Clone, Copy)]
struct AbsState {
    /// Open timer count on this path.
    depth: i64,
    /// A stop has returned the depth to zero (the probe's measurement is
    /// over; emitting after it would misattribute the record).
    finished: bool,
}

impl AbsCtx<'_> {
    fn err(&mut self, e: VerifyError) {
        if !self.errors.contains(&e) {
            self.errors.push(e);
        }
    }

    fn eval(&mut self, e: &Expr) -> Interval {
        match e {
            Expr::Const(c) => Interval::exact(*c),
            Expr::Ctx(f) => match f {
                CtxField::Rank | CtxField::Thread | CtxField::FuncIndex => {
                    Interval::of(0, i64::MAX)
                }
                CtxField::Reps => Interval::of(1, i64::MAX),
                CtxField::IsEntry => Interval::of(0, 1),
            },
            Expr::Load(idx) => {
                let i = self.eval(idx);
                if i.lo < 0 || i.hi >= self.prog.region_slots as i64 {
                    self.err(VerifyError::OobRead {
                        slot: i,
                        region_slots: self.prog.region_slots,
                    });
                }
                // Slot contents persist across firings: unknown here.
                Interval::TOP
            }
            Expr::Bin(op, a, b) => {
                let (a, b) = (self.eval(a), self.eval(b));
                match op {
                    BinOp::Add => a.add(b),
                    BinOp::Sub => a.sub(b),
                    BinOp::Mul => a.mul(b),
                    BinOp::Min => a.min(b),
                    BinOp::Max => a.max(b),
                }
            }
        }
    }

    /// Walk a block, returning `(worst-case cost in ns, exit state)`.
    fn walk(&mut self, body: &[Stmt], mut st: AbsState) -> (u64, AbsState) {
        let mut cost: u64 = 0;
        for stmt in body {
            match stmt {
                Stmt::Store { slot, value } => {
                    self.stores += 1;
                    let i = self.eval(slot);
                    self.eval(value);
                    if i.lo < 0 || i.hi >= self.prog.region_slots as i64 {
                        self.err(VerifyError::OobWrite {
                            slot: i,
                            region_slots: self.prog.region_slots,
                        });
                    }
                    cost = cost.saturating_add(STORE_COST.as_nanos());
                }
                Stmt::StartTimer => {
                    st.depth += 1;
                    self.max_depth = self.max_depth.max(st.depth.max(0) as u32);
                    cost = cost.saturating_add(TIMER_COST.as_nanos());
                }
                Stmt::StopTimer => {
                    if st.depth == 0 {
                        self.err(VerifyError::UnbalancedTimer {
                            detail: "stop without a matching start".into(),
                        });
                    } else {
                        st.depth -= 1;
                        if st.depth == 0 {
                            st.finished = true;
                        }
                    }
                    cost = cost.saturating_add(TIMER_COST.as_nanos());
                }
                Stmt::Emit { value, .. } => {
                    self.emits += 1;
                    self.eval(value);
                    if st.finished {
                        self.err(VerifyError::EmitAfterStop);
                    }
                    cost = cost.saturating_add(EMIT_COST.as_nanos());
                }
                Stmt::Call(i) => {
                    self.calls += 1;
                    match self.prog.intrinsics.get(*i) {
                        None => self.err(VerifyError::UnknownIntrinsic { index: *i }),
                        Some(intr) => {
                            if self.prog.intrinsics.cycle_from(*i).is_some() {
                                self.err(VerifyError::RecursiveIntrinsic {
                                    name: intr.name.to_string(),
                                });
                            }
                            cost = cost.saturating_add(intr.cost.as_nanos());
                        }
                    }
                }
                Stmt::Loop { trips, body } => {
                    let t = self.eval(trips);
                    let bound = if t.hi < 0 {
                        0
                    } else if t.hi as u64 > MAX_LOOP_TRIPS {
                        let upper = (t.hi != i64::MAX).then_some(t.hi as u64);
                        self.err(VerifyError::UnboundedLoop { upper });
                        0
                    } else {
                        t.hi as u64
                    };
                    let entry = st;
                    let (body_cost, exit) = self.walk(body, entry);
                    if exit.depth != entry.depth {
                        self.err(VerifyError::UnbalancedTimer {
                            detail: format!(
                                "loop body changes timer depth by {}",
                                exit.depth - entry.depth
                            ),
                        });
                    }
                    // A stop inside one iteration precedes the next
                    // iteration's statements: an emit in the body would
                    // then follow a stop.
                    if exit.finished && !entry.finished && contains_emit(body) {
                        self.err(VerifyError::EmitAfterStop);
                    }
                    st.finished |= exit.finished;
                    cost = cost.saturating_add(
                        bound.saturating_mul(body_cost.saturating_add(LOOP_ITER_COST.as_nanos())),
                    );
                }
                Stmt::If {
                    cond,
                    then_body,
                    else_body,
                } => {
                    self.eval(cond);
                    let (tc, ts) = self.walk(then_body, st);
                    let (ec, es) = self.walk(else_body, st);
                    if ts.depth != es.depth {
                        self.err(VerifyError::UnbalancedTimer {
                            detail: format!(
                                "branch arms leave timer depths {} and {}",
                                ts.depth, es.depth
                            ),
                        });
                    }
                    st = AbsState {
                        depth: ts.depth.max(es.depth),
                        finished: ts.finished || es.finished,
                    };
                    cost = cost
                        .saturating_add(BRANCH_COST.as_nanos())
                        .saturating_add(tc.max(ec));
                }
            }
        }
        (cost, st)
    }
}

fn contains_emit(body: &[Stmt]) -> bool {
    body.iter().any(|s| match s {
        Stmt::Emit { .. } => true,
        Stmt::Loop { body, .. } => contains_emit(body),
        Stmt::If {
            then_body,
            else_body,
            ..
        } => contains_emit(then_body) || contains_emit(else_body),
        _ => false,
    })
}

/// Abstractly interpret `prog`: derive its worst-case cost bound, check
/// its side-effect discipline, and prove termination (see module docs).
pub fn verify(prog: &SnippetProgram) -> VerifyReport {
    let mut ctx = AbsCtx {
        prog,
        errors: Vec::new(),
        stores: 0,
        emits: 0,
        calls: 0,
        max_depth: 0,
    };
    let (cost, exit) = ctx.walk(
        &prog.body,
        AbsState {
            depth: 0,
            finished: false,
        },
    );
    if exit.depth != 0 {
        ctx.err(VerifyError::UnbalancedTimer {
            detail: format!("{} timer(s) left running at exit", exit.depth),
        });
    }
    VerifyReport {
        derived_cost: SimTime::from_nanos(cost),
        errors: ctx.errors,
        stores: ctx.stores,
        emits: ctx.emits,
        calls: ctx.calls,
        max_timer_depth: ctx.max_depth,
    }
}

/// Install-time verification of a snippet, as run by the DPCL daemons
/// before `Image::try_insert`: a snippet carrying an IR program must
/// verify; an opaque legacy closure (no program) passes unchecked.
pub fn verify_snippet(s: &Snippet) -> Result<(), String> {
    match &s.program {
        None => Ok(()),
        Some(prog) => {
            let report = prog.verify();
            if report.ok() {
                Ok(())
            } else {
                Err(format!("snippet {:?} rejected: {report}", s.name))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::func::FuncId;
    use dynprof_sim::{Machine, Proc, Sim};

    fn in_proc(f: impl FnOnce(&Proc) + Send + 'static) {
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, f);
        sim.run();
    }

    fn ctx_for<'a>(p: &'a Proc, reps: u64) -> ProbeCtx<'a> {
        ProbeCtx {
            proc: p,
            rank: 0,
            thread: 0,
            func: FuncId(0),
            name: "f",
            point: ProbePointKind::Entry,
            reps,
        }
    }

    fn count_program() -> Arc<SnippetProgram> {
        SnippetProgram::new(
            "count",
            1,
            vec![Stmt::Store {
                slot: Expr::Const(0),
                value: Expr::bin(BinOp::Add, Expr::load(0), Expr::Ctx(CtxField::Reps)),
            }],
            IntrinsicTable::empty(),
        )
    }

    #[test]
    fn count_program_verifies_and_counts() {
        let prog = count_program();
        let report = prog.verify();
        assert!(report.ok(), "{report}");
        assert_eq!(report.derived_cost, STORE_COST);
        assert_eq!(report.stores, 1);
        let (s, state) = prog.compile_with_state().expect("verifies");
        assert_eq!(s.cost, SimTime::ZERO);
        assert_eq!(s.derived_cost, Some(STORE_COST));
        in_proc(move |p| {
            (s.code)(&ctx_for(p, 3));
            (s.code)(&ctx_for(p, 1));
            assert_eq!(state.slot(0), 4);
            assert_eq!(p.now(), STORE_COST * 3 + STORE_COST);
        });
    }

    #[test]
    fn timer_pair_verifies_and_measures() {
        let prog = SnippetProgram::new(
            "timer",
            0,
            vec![
                Stmt::StartTimer,
                Stmt::Emit {
                    tag: 7,
                    value: Expr::Ctx(CtxField::Rank),
                },
                Stmt::StopTimer,
            ],
            IntrinsicTable::empty(),
        );
        let report = prog.verify();
        assert!(report.ok(), "{report}");
        assert_eq!(report.derived_cost, TIMER_COST + EMIT_COST + TIMER_COST);
        assert_eq!(report.max_timer_depth, 1);
        let (s, state) = prog.compile_with_state().expect("verifies");
        in_proc(move |p| {
            (s.code)(&ctx_for(p, 1));
            assert_eq!(state.emitted(), vec![(7, 0)]);
            // Emit happened between start and stop: the pair timed it.
            assert_eq!(state.timer_total(), EMIT_COST + TIMER_COST);
        });
    }

    #[test]
    fn loop_bound_times_body_cost() {
        let prog = SnippetProgram::new(
            "loop",
            2,
            vec![Stmt::Loop {
                trips: Expr::bin(BinOp::Min, Expr::Ctx(CtxField::Reps), Expr::Const(8)),
                body: vec![Stmt::Store {
                    slot: Expr::Const(1),
                    value: Expr::Ctx(CtxField::Thread),
                }],
            }],
            IntrinsicTable::empty(),
        );
        let report = prog.verify();
        assert!(report.ok(), "{report}");
        assert_eq!(
            report.derived_cost.as_nanos(),
            8 * (STORE_COST.as_nanos() + LOOP_ITER_COST.as_nanos())
        );
    }

    #[test]
    fn unbounded_loop_rejected() {
        let prog = SnippetProgram::new(
            "bad",
            0,
            vec![Stmt::Loop {
                trips: Expr::Ctx(CtxField::Reps),
                body: vec![],
            }],
            IntrinsicTable::empty(),
        );
        let report = prog.verify();
        assert!(matches!(
            report.errors[..],
            [VerifyError::UnboundedLoop { upper: None }]
        ));
        assert!(prog.compile().is_err());
    }

    #[test]
    fn oob_write_and_read_rejected() {
        let prog = SnippetProgram::new(
            "bad",
            2,
            vec![Stmt::Store {
                slot: Expr::Const(5),
                value: Expr::load(3),
            }],
            IntrinsicTable::empty(),
        );
        let report = prog.verify();
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::OobWrite { .. })));
        assert!(report
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::OobRead { .. })));
    }

    #[test]
    fn unbalanced_timers_rejected() {
        // Stop without start.
        let p1 = SnippetProgram::new("b1", 0, vec![Stmt::StopTimer], IntrinsicTable::empty());
        assert!(!p1.verify().ok());
        // Start never stopped.
        let p2 = SnippetProgram::new("b2", 0, vec![Stmt::StartTimer], IntrinsicTable::empty());
        assert!(!p2.verify().ok());
        // Branch arms disagree.
        let p3 = SnippetProgram::new(
            "b3",
            0,
            vec![
                Stmt::If {
                    cond: Expr::Ctx(CtxField::IsEntry),
                    then_body: vec![Stmt::StartTimer],
                    else_body: vec![],
                },
                Stmt::StopTimer,
            ],
            IntrinsicTable::empty(),
        );
        assert!(!p3.verify().ok());
        // Balanced arms are fine.
        let p4 = SnippetProgram::new(
            "ok",
            0,
            vec![Stmt::If {
                cond: Expr::Ctx(CtxField::IsEntry),
                then_body: vec![Stmt::StartTimer, Stmt::StopTimer],
                else_body: vec![],
            }],
            IntrinsicTable::empty(),
        );
        assert!(p4.verify().ok(), "{}", p4.verify());
    }

    #[test]
    fn emit_after_stop_rejected_including_across_loop_iterations() {
        let p1 = SnippetProgram::new(
            "b",
            0,
            vec![
                Stmt::StartTimer,
                Stmt::StopTimer,
                Stmt::Emit {
                    tag: 0,
                    value: Expr::Const(1),
                },
            ],
            IntrinsicTable::empty(),
        );
        assert!(p1.verify().errors.contains(&VerifyError::EmitAfterStop));
        // Emit before the stop, but inside a loop: iteration 2's emit
        // follows iteration 1's stop.
        let p2 = SnippetProgram::new(
            "b2",
            0,
            vec![Stmt::Loop {
                trips: Expr::Const(2),
                body: vec![
                    Stmt::StartTimer,
                    Stmt::Emit {
                        tag: 0,
                        value: Expr::Const(1),
                    },
                    Stmt::StopTimer,
                ],
            }],
            IntrinsicTable::empty(),
        );
        assert!(p2.verify().errors.contains(&VerifyError::EmitAfterStop));
    }

    #[test]
    fn recursive_and_unknown_intrinsics_rejected() {
        let table = IntrinsicTable::new(vec![
            Intrinsic::charged("a", SimTime::from_nanos(10), |_| {}).calls(vec![1]),
            Intrinsic::charged("b", SimTime::from_nanos(10), |_| {}).calls(vec![0]),
        ]);
        let prog = SnippetProgram::new("r", 0, vec![Stmt::Call(0)], table);
        assert!(prog
            .verify()
            .errors
            .iter()
            .any(|e| matches!(e, VerifyError::RecursiveIntrinsic { .. })));
        let prog2 = SnippetProgram::new("u", 0, vec![Stmt::Call(9)], IntrinsicTable::empty());
        assert!(prog2
            .verify()
            .errors
            .contains(&VerifyError::UnknownIntrinsic { index: 9 }));
    }

    #[test]
    fn internal_intrinsic_counts_toward_bound_but_is_not_charged() {
        let cost = SimTime::from_nanos(800);
        let table = IntrinsicTable::new(vec![Intrinsic::internal("vt_begin", cost, |_| {})]);
        let prog = SnippetProgram::new("vt", 0, vec![Stmt::Call(0)], table);
        let report = prog.verify();
        assert!(report.ok());
        assert_eq!(report.derived_cost, cost);
        let s = prog.compile().expect("verifies");
        in_proc(move |p| {
            (s.code)(&ctx_for(p, 5));
            assert_eq!(p.now(), SimTime::ZERO, "internal intrinsic self-charges");
        });
    }

    #[test]
    fn charged_intrinsic_charges_cost_times_reps() {
        let cost = SimTime::from_nanos(100);
        let table = IntrinsicTable::new(vec![Intrinsic::charged("tick", cost, |_| {})]);
        let prog = SnippetProgram::new("t", 0, vec![Stmt::Call(0)], table);
        let s = prog.compile().expect("verifies");
        in_proc(move |p| {
            (s.code)(&ctx_for(p, 4));
            assert_eq!(p.now(), cost * 4);
        });
    }

    #[test]
    fn verify_snippet_accepts_legacy_and_rejects_bad_programs() {
        let legacy = Snippet::noop("legacy");
        assert!(verify_snippet(&legacy).is_ok());
        let good = count_program().compile().expect("verifies");
        assert!(verify_snippet(&good).is_ok());
        let bad = SnippetProgram::new("bad", 0, vec![Stmt::StopTimer], IntrinsicTable::empty())
            .compile_unchecked();
        let err = verify_snippet(&bad).unwrap_err();
        assert!(err.contains("unbalanced timer"), "{err}");
    }

    #[test]
    fn derived_bound_dominates_observed_cost_on_branchy_program() {
        // If takes the cheaper arm at runtime; the bound takes the max.
        let prog = SnippetProgram::new(
            "branchy",
            1,
            vec![Stmt::If {
                cond: Expr::Const(0),
                then_body: vec![
                    Stmt::Emit {
                        tag: 1,
                        value: Expr::Const(1),
                    },
                    Stmt::Emit {
                        tag: 2,
                        value: Expr::Const(2),
                    },
                ],
                else_body: vec![Stmt::Store {
                    slot: Expr::Const(0),
                    value: Expr::Const(1),
                }],
            }],
            IntrinsicTable::empty(),
        );
        let report = prog.verify();
        let s = prog.compile().expect("verifies");
        in_proc(move |p| {
            (s.code)(&ctx_for(p, 1));
            assert!(report.derived_cost >= p.now());
        });
    }
}
