//! # dynprof-image — program images and runtime code patching
//!
//! The Dyninst/DPCL-probe analogue (paper §2, Fig 1): a process's
//! executable image as a set of functions with entry/exit probe points.
//! Dynamic instrumentation overwrites a probe point with a jump to a
//! **base trampoline**, which saves registers and dispatches a chain of
//! **mini-trampolines**, each holding one instrumentation snippet.
//!
//! The crate models that machinery with real executable snippets
//! (closures) and an explicit cost model, preserving the property the
//! paper's results hinge on: *an uninstrumented probe point costs zero*.
//!
//! ```
//! use dynprof_image::{CallerCtx, FunctionInfo, ImageBuilder, ProbePoint, Snippet};
//! use dynprof_sim::{Machine, Sim, SimTime};
//! use std::sync::Arc;
//!
//! let mut b = ImageBuilder::new("demo");
//! let f = b.add(FunctionInfo::new("test"));
//! let img = Arc::new(b.build());
//! img.insert(ProbePoint::entry(f), Snippet::new("start_timer",
//!     SimTime::from_nanos(800), |_ctx| { /* e.g. VT_begin(ctx) */ }));
//!
//! let sim = Sim::virtual_time(Machine::test_machine(), 0);
//! let img2 = Arc::clone(&img);
//! sim.spawn("app", 0, move |p| {
//!     img2.call(p, CallerCtx::default(), f, || { /* body */ });
//! });
//! sim.run();
//! assert_eq!(img.call_count(f), 1);
//! ```

#![warn(missing_docs)]

mod func;
#[allow(clippy::module_inception)]
mod image;
pub mod ir;
mod snippet;
mod trampoline;

pub use func::{BasicBlock, FuncId, FunctionInfo, ProbePoint, ProbePointKind};
pub use image::{
    CallerCtx, Image, ImageBuilder, ImageObserver, PatchError, PcLog, StaticHooks,
    MAX_SAMPLED_THREADS,
};
pub use ir::{
    verify_snippet, BinOp, ChargeMode, CtxField, Expr, Intrinsic, IntrinsicTable, ProgramState,
    SnippetProgram, Stmt, VerifyError, VerifyReport, BRANCH_COST, EMIT_COST, LOOP_ITER_COST,
    MAX_LOOP_TRIPS, STORE_COST, TIMER_COST,
};
pub use snippet::{ProbeCtx, Snippet, SnippetId};
pub use trampoline::{
    BaseTrampoline, MiniTrampoline, BASE_TRAMPOLINE_BYTES, MINI_TRAMPOLINE_BYTES,
    MIN_PATCHABLE_BYTES,
};
