//! The executable image of a running process, as seen by a dynamic
//! instrumenter.
//!
//! Applications route every (interesting) function call through
//! [`Image::call`], which is the moral equivalent of executing the
//! function's entry instruction: if a dynamic probe has been installed
//! there, control flows through the base trampoline and its chain of
//! mini-trampolines (whose snippets really execute); if the binary was
//! compiled with Guide-style static instrumentation, the static begin/end
//! hooks fire; if neither, the call costs nothing — the property that makes
//! the paper's `Dynamic` policy track `None` so closely (Fig 7).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use dynprof_sim::sync::SimGate;
use dynprof_sim::{Proc, SimTime};

use crate::func::{FuncId, FunctionInfo, ProbePoint, ProbePointKind};
use crate::snippet::{ProbeCtx, Snippet, SnippetId};
use crate::trampoline::{BaseTrampoline, MIN_PATCHABLE_BYTES};

/// Why a probe could not be installed at a point.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PatchError {
    /// The function body is smaller than the jump the patch must write;
    /// installing would overwrite the following symbol.
    FunctionTooSmall {
        /// Symbol that was targeted.
        name: String,
        /// Its body size.
        size_bytes: usize,
        /// The minimum patchable size ([`MIN_PATCHABLE_BYTES`]).
        required: usize,
    },
    /// The function's CFG has a branch whose target lands strictly inside
    /// the prologue bytes the entry patch overwrites — executing it would
    /// land mid-jump on half-relocated instructions.
    BranchIntoPatch {
        /// Symbol that was targeted.
        name: String,
        /// Offending branch-target offset within the function.
        target_offset: usize,
        /// Patched prologue length ([`MIN_PATCHABLE_BYTES`]).
        patch_len: usize,
    },
}

impl std::fmt::Display for PatchError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PatchError::FunctionTooSmall {
                name,
                size_bytes,
                required,
            } => write!(
                f,
                "function {name:?} is {size_bytes} bytes, smaller than the \
                 {required}-byte probe-point jump"
            ),
            PatchError::BranchIntoPatch {
                name,
                target_offset,
                patch_len,
            } => write!(
                f,
                "function {name:?} has a branch target at offset \
                 {target_offset}, inside the {patch_len}-byte patched \
                 prologue (branch-into-patch hazard)"
            ),
        }
    }
}

impl std::error::Error for PatchError {}

/// Observer of process-state transitions (suspension/resumption), used
/// to realize the paper's §5.1 proposal: suspensions appear in the
/// time-line as periods of inactivity that analysis tools can disregard.
pub trait ImageObserver: Send + Sync {
    /// The process was suspended at `p.now()` (`p` is the acting daemon).
    fn on_suspend(&self, p: &Proc);
    /// The process resumed at `p.now()`.
    fn on_resume(&self, p: &Proc);
}

/// Static instrumentation hooks, as inserted by the Guide compiler at
/// function entry/exit (implemented by the Vampirtrace layer).
pub trait StaticHooks: Send + Sync {
    /// Fired at function entry (aggregated over `ctx.reps` invocations).
    fn begin(&self, ctx: &ProbeCtx<'_>);
    /// Fired at function exit.
    fn end(&self, ctx: &ProbeCtx<'_>);
}

/// Threads whose shadow program counter is tracked for sampling.
pub const MAX_SAMPLED_THREADS: usize = 64;

/// The PC journal: per-thread `(enter, exit, function index)` intervals.
pub type PcLog = HashMap<usize, Vec<(SimTime, SimTime, u32)>>;

/// Identity of the caller inside a process: its MPI rank and OpenMP thread.
#[derive(Clone, Copy, Debug, Default)]
pub struct CallerCtx {
    /// MPI rank of the process (0 if not an MPI job).
    pub rank: usize,
    /// OpenMP thread id within the process (0 = initial thread).
    pub thread: usize,
}

struct PointPair {
    entry: BaseTrampoline,
    exit: BaseTrampoline,
}

struct SuspendState {
    gate: Arc<SimGate>,
}

/// A process's executable image: functions, probe points, trampolines.
///
/// One `Image` per MPI process; OpenMP threads of a process share a single
/// image (which is why instrumenting an OpenMP application patches one
/// image regardless of thread count — paper Fig 9).
pub struct Image {
    program: String,
    info: Vec<FunctionInfo>,
    by_name: HashMap<String, FuncId>,
    probes: RwLock<Vec<PointPair>>,
    static_hooks: RwLock<Option<Arc<dyn StaticHooks>>>,
    observer: RwLock<Option<Arc<dyn ImageObserver>>>,
    suspended: AtomicBool,
    suspend: Mutex<SuspendState>,
    next_snippet: AtomicU64,
    counts: Vec<AtomicU64>,
    /// Shadow program counter per thread (function id + 1; 0 = outside
    /// any manifest function). The real machine has a PC for free; this
    /// is what a statistical sampler reads (paper §2).
    pc: Vec<AtomicU32>,
    /// When enabled, every call's `[enter, exit)` interval is journaled
    /// per thread so an ideal interrupt sampler can be evaluated on the
    /// virtual timeline (see `dynprof_vt::sampling`).
    pc_log_enabled: AtomicBool,
    pc_log: Mutex<PcLog>,
    /// Count of probe-point patches performed (jump written or removed),
    /// reported in dynprof's timefile.
    patches: AtomicU64,
}

impl Image {
    /// Look up a function by symbol name.
    pub fn func(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// Metadata of `fid`.
    pub fn info(&self, fid: FuncId) -> &FunctionInfo {
        &self.info[fid.index()]
    }

    /// Symbol name of `fid`.
    pub fn name(&self, fid: FuncId) -> &str {
        &self.info[fid.index()].name
    }

    /// Number of functions in the image.
    pub fn len(&self) -> usize {
        self.info.len()
    }

    /// True if the image has no functions.
    pub fn is_empty(&self) -> bool {
        self.info.is_empty()
    }

    /// The program name this image belongs to.
    pub fn program(&self) -> &str {
        &self.program
    }

    /// Iterate all function ids.
    pub fn functions(&self) -> impl Iterator<Item = FuncId> + '_ {
        (0..self.info.len() as u32).map(FuncId)
    }

    /// Install image-wide static instrumentation hooks (linking the app
    /// against the trace library at "compile" time).
    pub fn set_static_hooks(&self, hooks: Arc<dyn StaticHooks>) {
        *self.static_hooks.write() = Some(hooks);
    }

    /// Install a process-state observer (suspension tracking, §5.1).
    pub fn set_observer(&self, obs: Arc<dyn ImageObserver>) {
        *self.observer.write() = Some(obs);
    }

    /// Total calls recorded for `fid` (including batched reps).
    pub fn call_count(&self, fid: FuncId) -> u64 {
        self.counts[fid.index()].load(Ordering::Relaxed)
    }

    /// Total calls recorded across all functions.
    pub fn total_calls(&self) -> u64 {
        self.counts.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Number of probe-point patch operations performed so far.
    pub fn patch_count(&self) -> u64 {
        self.patches.load(Ordering::Relaxed)
    }

    // -- dynamic instrumentation -------------------------------------------

    /// Can `fid` legally hold a probe-point patch? False for functions
    /// whose body is smaller than the jump the patch writes.
    pub fn patchable(&self, fid: FuncId) -> bool {
        self.info[fid.index()].size_bytes >= MIN_PATCHABLE_BYTES
    }

    /// Insert `snippet` at `point`, returning a handle for removal.
    ///
    /// Panics if the target function is too small to patch; use
    /// [`Image::try_insert`] for a recoverable error.
    ///
    /// The caller is expected to have suspended the process (DPCL does);
    /// the image itself only requires the instrumenter lock.
    pub fn insert(&self, point: ProbePoint, snippet: Snippet) -> SnippetId {
        match self.try_insert(point, snippet) {
            Ok(id) => id,
            Err(e) => panic!("probe install rejected: {e}"),
        }
    }

    /// Would installing `snippet` at `point` be a safe patch? Checks the
    /// target's size against the probe-point jump and, for entry points,
    /// its CFG for the branch-into-patch hazard — without installing
    /// anything. DPCL daemons run this (plus snippet-program
    /// verification) when voting on a transaction's staged installs.
    pub fn validate_patch(&self, point: ProbePoint, _snippet: &Snippet) -> Result<(), PatchError> {
        let info = &self.info[point.func.index()];
        if info.size_bytes < MIN_PATCHABLE_BYTES {
            return Err(PatchError::FunctionTooSmall {
                name: info.name.clone(),
                size_bytes: info.size_bytes,
                required: MIN_PATCHABLE_BYTES,
            });
        }
        // Only the entry patch overwrites prologue bytes a branch could
        // re-enter; the exit patch rewrites return sites.
        if point.kind == ProbePointKind::Entry {
            if let Some(target) = info.branch_into_patch(MIN_PATCHABLE_BYTES) {
                return Err(PatchError::BranchIntoPatch {
                    name: info.name.clone(),
                    target_offset: target,
                    patch_len: MIN_PATCHABLE_BYTES,
                });
            }
        }
        Ok(())
    }

    /// Insert `snippet` at `point` if the target can hold the patch.
    ///
    /// The caller is expected to have suspended the process (DPCL does);
    /// the image itself only requires the instrumenter lock.
    pub fn try_insert(&self, point: ProbePoint, snippet: Snippet) -> Result<SnippetId, PatchError> {
        self.validate_patch(point, &snippet)?;
        let id = SnippetId(self.next_snippet.fetch_add(1, Ordering::Relaxed));
        let mut probes = self.probes.write();
        let pair = &mut probes[point.func.index()];
        let base = match point.kind {
            ProbePointKind::Entry => &mut pair.entry,
            ProbePointKind::Exit => &mut pair.exit,
        };
        if !base.occupied() {
            // Writing the jump instruction at the probe point is a patch.
            self.patches.fetch_add(1, Ordering::Relaxed);
        }
        base.push(id, snippet);
        self.patches.fetch_add(1, Ordering::Relaxed); // mini-trampoline store
        Ok(id)
    }

    /// Remove the snippet `id` from `point`. Returns `true` if present.
    pub fn remove(&self, point: ProbePoint, id: SnippetId) -> bool {
        let mut probes = self.probes.write();
        let pair = &mut probes[point.func.index()];
        let base = match point.kind {
            ProbePointKind::Entry => &mut pair.entry,
            ProbePointKind::Exit => &mut pair.exit,
        };
        let removed = base.remove(id);
        if removed {
            self.patches.fetch_add(1, Ordering::Relaxed);
        }
        removed
    }

    /// Remove every snippet at both probe points of `fid`; returns how many
    /// mini-trampolines were deallocated.
    pub fn remove_function_instr(&self, fid: FuncId) -> usize {
        let mut probes = self.probes.write();
        let pair = &mut probes[fid.index()];
        let mut n = 0;
        for base in [&mut pair.entry, &mut pair.exit] {
            loop {
                let id = match base.iter().next() {
                    Some(m) => m.id,
                    None => break,
                };
                base.remove(id);
                n += 1;
            }
        }
        if n > 0 {
            self.patches.fetch_add(n as u64, Ordering::Relaxed);
        }
        n
    }

    /// Is any instrumentation installed at `point`?
    pub fn occupied(&self, point: ProbePoint) -> bool {
        let probes = self.probes.read();
        let pair = &probes[point.func.index()];
        match point.kind {
            ProbePointKind::Entry => pair.entry.occupied(),
            ProbePointKind::Exit => pair.exit.occupied(),
        }
    }

    /// Total dynamically-allocated trampoline bytes.
    pub fn allocated_trampoline_bytes(&self) -> usize {
        let probes = self.probes.read();
        probes
            .iter()
            .map(|p| p.entry.allocated_bytes() + p.exit.allocated_bytes())
            .sum()
    }

    /// Functions that currently have instrumentation at entry or exit.
    pub fn instrumented_functions(&self) -> Vec<FuncId> {
        let probes = self.probes.read();
        probes
            .iter()
            .enumerate()
            .filter(|(_, p)| p.entry.occupied() || p.exit.occupied())
            .map(|(i, _)| FuncId(i as u32))
            .collect()
    }

    // -- suspend / resume ---------------------------------------------------

    /// Suspend the process: subsequent `call`s block until [`Image::resume`].
    /// Threads already inside a function body run to the next call boundary
    /// (the simulator's approximation of stopping at a safe point).
    /// `p` is the acting process (the DPCL daemon).
    pub fn suspend(&self, p: &Proc) {
        let mut s = self.suspend.lock();
        if !self.suspended.swap(true, Ordering::SeqCst) {
            s.gate = Arc::new(SimGate::new());
            if let Some(obs) = self.observer.read().clone() {
                obs.on_suspend(p);
            }
        }
    }

    /// Resume the process; blocked calls proceed `latency` after `p`'s time.
    pub fn resume(&self, p: &Proc, latency: SimTime) {
        let s = self.suspend.lock();
        if self.suspended.swap(false, Ordering::SeqCst) {
            s.gate.open(p, latency);
            if let Some(obs) = self.observer.read().clone() {
                obs.on_resume(p);
            }
        }
    }

    /// Is the process currently suspended?
    pub fn is_suspended(&self) -> bool {
        self.suspended.load(Ordering::SeqCst)
    }

    fn wait_if_suspended(&self, p: &Proc) {
        while self.suspended.load(Ordering::SeqCst) {
            let gate = Arc::clone(&self.suspend.lock().gate);
            // Recheck under the gate: resume may have happened in between.
            if !self.suspended.load(Ordering::SeqCst) {
                break;
            }
            gate.wait_open(p);
        }
    }

    // -- the call path -------------------------------------------------------

    /// Execute `body` as a call to `fid`, firing instrumentation.
    pub fn call<R>(&self, p: &Proc, cc: CallerCtx, fid: FuncId, body: impl FnOnce() -> R) -> R {
        self.call_batch(p, cc, fid, 1, |_| body())
    }

    /// Execute `body` once on behalf of `reps` aggregated invocations of
    /// `fid`.
    ///
    /// Very hot leaf functions (called millions of times in the real ASCI
    /// kernels) would make the simulation itself intractable if every call
    /// were played out; `call_batch` preserves *accounting* fidelity — all
    /// instrumentation costs, call counts, and trace volume are multiplied
    /// by `reps` — while executing the probe machinery once. `body`
    /// receives `reps` so the application can scale its own modelled work.
    pub fn call_batch<R>(
        &self,
        p: &Proc,
        cc: CallerCtx,
        fid: FuncId,
        reps: u64,
        body: impl FnOnce(u64) -> R,
    ) -> R {
        debug_assert!(reps > 0, "call_batch with zero reps");
        self.wait_if_suspended(p);
        self.counts[fid.index()].fetch_add(reps, Ordering::Relaxed);
        // Shadow PC for statistical samplers (restored on return).
        let pc_slot = self.pc.get(cc.thread);
        let prev_pc = pc_slot.map(|s| s.swap(fid.0 + 1, Ordering::Relaxed));
        let t_enter = self.pc_log_enabled.load(Ordering::Relaxed).then(|| p.now());

        let info = &self.info[fid.index()];
        let static_hooks = if info.statically_instrumented {
            self.static_hooks.read().clone()
        } else {
            None
        };

        // Entry: dynamic probe fires at the entry instruction, then the
        // compiler-inserted static prologue.
        self.fire_point(p, cc, fid, ProbePointKind::Entry, reps);
        if let Some(h) = &static_hooks {
            h.begin(&self.ctx(p, cc, fid, ProbePointKind::Entry, reps));
        }

        let r = body(reps);

        if let Some(h) = &static_hooks {
            h.end(&self.ctx(p, cc, fid, ProbePointKind::Exit, reps));
        }
        self.fire_point(p, cc, fid, ProbePointKind::Exit, reps);
        if let (Some(slot), Some(prev)) = (pc_slot, prev_pc) {
            slot.store(prev, Ordering::Relaxed);
        }
        if let Some(t0) = t_enter {
            self.pc_log
                .lock()
                .entry(cc.thread)
                .or_default()
                .push((t0, p.now(), fid.0));
        }
        r
    }

    /// The function `thread` is currently executing, if any (what a
    /// statistical sampler's interrupt would see as the PC). Meaningful
    /// in real-clock mode; virtual-time samplers use the PC journal.
    pub fn current_function(&self, thread: usize) -> Option<FuncId> {
        let v = self.pc.get(thread)?.load(Ordering::Relaxed);
        (v != 0).then(|| FuncId(v - 1))
    }

    /// Enable journaling of per-call PC intervals (virtual-time sampling).
    pub fn enable_pc_log(&self) {
        self.pc_log_enabled.store(true, Ordering::Relaxed);
    }

    /// Snapshot the PC journal: per-thread `(enter, exit, func)` intervals
    /// in completion order.
    pub fn pc_log_snapshot(&self) -> PcLog {
        self.pc_log.lock().clone()
    }

    fn ctx<'a>(
        &'a self,
        p: &'a Proc,
        cc: CallerCtx,
        fid: FuncId,
        point: ProbePointKind,
        reps: u64,
    ) -> ProbeCtx<'a> {
        ProbeCtx {
            proc: p,
            rank: cc.rank,
            thread: cc.thread,
            func: fid,
            name: &self.info[fid.index()].name,
            point,
            reps,
        }
    }

    fn fire_point(&self, p: &Proc, cc: CallerCtx, fid: FuncId, kind: ProbePointKind, reps: u64) {
        // Snippet code must run outside the `probes` read guard (a snippet
        // may itself insert/remove probes), so the chain is cloned out
        // first — one Arc bump per chained snippet. Chains are almost
        // always short, so short chains borrow this stack buffer and only
        // longer ones spill to the heap: the occupied fire path then makes
        // zero allocations per traversal (pinned by `alloc/probe_fire` in
        // the micro bench ledger).
        const INLINE_CHAIN: usize = 4;
        let mut inline: [Option<Arc<Snippet>>; INLINE_CHAIN] = [None, None, None, None];
        let mut spill: Vec<Arc<Snippet>> = Vec::new();
        let len = {
            let probes = self.probes.read();
            let pair = &probes[fid.index()];
            let base = match kind {
                ProbePointKind::Entry => &pair.entry,
                ProbePointKind::Exit => &pair.exit,
            };
            if !base.occupied() {
                return;
            }
            for (i, m) in base.iter().enumerate() {
                if i < INLINE_CHAIN {
                    inline[i] = Some(m.snippet.clone());
                } else {
                    spill.push(m.snippet.clone());
                }
            }
            base.chain_len()
        };
        // Base trampoline dispatch: jump, save regs, relocated instruction,
        // restore regs, jump back — once per traversal, times reps.
        let dispatch = p.machine().probe.trampoline_dispatch;
        p.advance(dispatch * reps);
        let ctx = self.ctx(p, cc, fid, kind, reps);
        for s in inline.iter().take(len).flatten().chain(spill.iter()) {
            p.advance(s.cost * reps);
            (s.code)(&ctx);
        }
    }
}

/// Builder for [`Image`].
pub struct ImageBuilder {
    program: String,
    info: Vec<FunctionInfo>,
}

impl ImageBuilder {
    /// Start building the image of `program`.
    pub fn new(program: impl Into<String>) -> ImageBuilder {
        ImageBuilder {
            program: program.into(),
            info: Vec::new(),
        }
    }

    /// Add a function; returns its id. Panics on duplicate names at build.
    pub fn add(&mut self, info: FunctionInfo) -> FuncId {
        let id = FuncId(self.info.len() as u32);
        self.info.push(info);
        id
    }

    /// Add a plain function by name.
    pub fn add_named(&mut self, name: impl Into<String>) -> FuncId {
        self.add(FunctionInfo::new(name))
    }

    /// Mark every function as statically instrumented (the Guide compiler
    /// instruments all subroutines; paper §3.1).
    pub fn static_instrument_all(&mut self) -> &mut Self {
        for f in &mut self.info {
            f.statically_instrumented = true;
        }
        self
    }

    /// Finish, producing the image.
    pub fn build(self) -> Image {
        let mut by_name = HashMap::with_capacity(self.info.len());
        for (i, f) in self.info.iter().enumerate() {
            let prev = by_name.insert(f.name.clone(), FuncId(i as u32));
            assert!(prev.is_none(), "duplicate function name {:?}", f.name);
        }
        let n = self.info.len();
        Image {
            program: self.program,
            info: self.info,
            by_name,
            probes: RwLock::new(
                (0..n)
                    .map(|_| PointPair {
                        entry: BaseTrampoline::new(),
                        exit: BaseTrampoline::new(),
                    })
                    .collect(),
            ),
            static_hooks: RwLock::new(None),
            observer: RwLock::new(None),
            suspended: AtomicBool::new(false),
            suspend: Mutex::new(SuspendState {
                gate: Arc::new(SimGate::new()),
            }),
            next_snippet: AtomicU64::new(1),
            counts: (0..n).map(|_| AtomicU64::new(0)).collect(),
            pc: (0..MAX_SAMPLED_THREADS)
                .map(|_| AtomicU32::new(0))
                .collect(),
            pc_log_enabled: AtomicBool::new(false),
            pc_log: Mutex::new(HashMap::new()),
            patches: AtomicU64::new(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dynprof_sim::{Machine, Sim};
    use std::sync::atomic::AtomicUsize;

    fn two_fn_image() -> Arc<Image> {
        let mut b = ImageBuilder::new("app");
        b.add_named("main");
        b.add_named("test");
        Arc::new(b.build())
    }

    #[test]
    fn uninstrumented_call_is_free_and_counted() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            let v = img2.call(p, CallerCtx::default(), f, || 41 + 1);
            assert_eq!(v, 42);
            assert_eq!(p.now(), dynprof_sim::SimTime::ZERO, "no probe, no cost");
        });
        sim.run();
        assert_eq!(img.call_count(f), 1);
    }

    #[test]
    fn inserted_snippet_fires_and_charges() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        let hits = Arc::new(AtomicUsize::new(0));
        let h = Arc::clone(&hits);
        img.insert(
            ProbePoint::entry(f),
            Snippet::new("timer", SimTime::from_nanos(500), move |ctx| {
                assert_eq!(ctx.name, "test");
                assert_eq!(ctx.point, ProbePointKind::Entry);
                h.fetch_add(ctx.reps as usize, Ordering::Relaxed);
            }),
        );
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || ());
            let expect = p.machine().probe.trampoline_dispatch + SimTime::from_nanos(500);
            assert_eq!(p.now(), expect);
        });
        sim.run();
        assert_eq!(hits.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn batch_call_multiplies_costs_and_counts() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        img.insert(
            ProbePoint::entry(f),
            Snippet::new("t", SimTime::from_nanos(100), |_| {}),
        );
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call_batch(p, CallerCtx::default(), f, 1000, |reps| {
                assert_eq!(reps, 1000);
            });
            let per = p.machine().probe.trampoline_dispatch + SimTime::from_nanos(100);
            assert_eq!(p.now(), per * 1000);
        });
        sim.run();
        assert_eq!(img.call_count(f), 1000);
    }

    #[test]
    fn chained_snippets_fire_in_insertion_order() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        let order = Arc::new(Mutex::new(Vec::new()));
        for tag in ["first", "second", "third"] {
            let o = Arc::clone(&order);
            img.insert(
                ProbePoint::exit(f),
                Snippet::new(tag, SimTime::ZERO, move |_| o.lock().push(tag)),
            );
        }
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || ());
        });
        sim.run();
        assert_eq!(*order.lock(), ["first", "second", "third"]);
    }

    #[test]
    fn remove_stops_firing_and_frees_bytes() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        let id = img.insert(ProbePoint::entry(f), Snippet::noop("n"));
        assert!(img.occupied(ProbePoint::entry(f)));
        assert!(img.allocated_trampoline_bytes() > 0);
        assert!(img.remove(ProbePoint::entry(f), id));
        assert!(!img.occupied(ProbePoint::entry(f)));
        assert_eq!(img.allocated_trampoline_bytes(), 0);
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || ());
            assert_eq!(p.now(), SimTime::ZERO);
        });
        sim.run();
    }

    #[test]
    fn static_hooks_fire_only_for_instrumented_functions() {
        struct Counter(AtomicUsize, AtomicUsize);
        impl StaticHooks for Counter {
            fn begin(&self, _: &ProbeCtx<'_>) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
            fn end(&self, _: &ProbeCtx<'_>) {
                self.1.fetch_add(1, Ordering::Relaxed);
            }
        }
        let mut b = ImageBuilder::new("app");
        let fi = b.add(FunctionInfo::new("instrumented").static_instr(true));
        let fp = b.add(FunctionInfo::new("plain"));
        let img = Arc::new(b.build());
        let counter = Arc::new(Counter(AtomicUsize::new(0), AtomicUsize::new(0)));
        img.set_static_hooks(Arc::clone(&counter) as Arc<dyn StaticHooks>);
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        sim.spawn("p", 0, move |p| {
            img2.call(p, CallerCtx::default(), fi, || ());
            img2.call(p, CallerCtx::default(), fp, || ());
        });
        sim.run();
        assert_eq!(counter.0.load(Ordering::Relaxed), 1);
        assert_eq!(counter.1.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn suspend_blocks_calls_until_resume() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        let img2 = Arc::clone(&img);
        let sim = Sim::virtual_time(Machine::test_machine(), 1);
        {
            // Suspend before anything runs (suspender clock at t=0).
            let img3 = Arc::clone(&img);
            sim.spawn("suspender", 2, move |p| img3.suspend(p));
        }
        sim.spawn("app", 0, move |p| {
            img2.call(p, CallerCtx::default(), f, || ());
            assert_eq!(p.now(), SimTime::from_millis(5));
        });
        let img3 = Arc::clone(&img);
        sim.spawn("instrumenter", 1, move |p| {
            p.advance(SimTime::from_millis(5));
            img3.resume(p, SimTime::ZERO);
        });
        sim.run();
        assert!(!img.is_suspended());
    }

    #[test]
    fn remove_function_instr_clears_both_points() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        img.insert(ProbePoint::entry(f), Snippet::noop("a"));
        img.insert(ProbePoint::entry(f), Snippet::noop("b"));
        img.insert(ProbePoint::exit(f), Snippet::noop("c"));
        assert_eq!(img.remove_function_instr(f), 3);
        assert!(!img.occupied(ProbePoint::entry(f)));
        assert!(!img.occupied(ProbePoint::exit(f)));
        assert_eq!(img.instrumented_functions().len(), 0);
    }

    #[test]
    fn too_small_function_rejects_patch_at_boundary() {
        let mut b = ImageBuilder::new("app");
        let tiny = b.add(FunctionInfo::new("tiny").with_size(MIN_PATCHABLE_BYTES - 1));
        let fits = b.add(FunctionInfo::new("fits").with_size(MIN_PATCHABLE_BYTES));
        let img = b.build();
        assert!(!img.patchable(tiny));
        assert!(img.patchable(fits));
        let err = img
            .try_insert(ProbePoint::entry(tiny), Snippet::noop("n"))
            .unwrap_err();
        assert_eq!(
            err,
            PatchError::FunctionTooSmall {
                name: "tiny".into(),
                size_bytes: MIN_PATCHABLE_BYTES - 1,
                required: MIN_PATCHABLE_BYTES,
            }
        );
        assert_eq!(img.patch_count(), 0, "rejected patch wrote nothing");
        assert!(!img.occupied(ProbePoint::entry(tiny)));
        // The exit point of the same function is equally unpatchable.
        assert!(img
            .try_insert(ProbePoint::exit(tiny), Snippet::noop("n"))
            .is_err());
        // The boundary size itself is accepted.
        assert!(img
            .try_insert(ProbePoint::entry(fits), Snippet::noop("n"))
            .is_ok());
    }

    #[test]
    fn branch_into_patch_rejects_entry_but_not_exit() {
        use crate::func::BasicBlock;
        let mut b = ImageBuilder::new("app");
        let hazard = b.add(FunctionInfo::new("hazard").with_size(256).with_blocks(vec![
            BasicBlock::new(0, vec![64]),
            BasicBlock::new(64, vec![8, 128]), // 8 is inside the 16-byte patch
        ]));
        let clean = b.add(FunctionInfo::new("clean").with_size(256).with_blocks(vec![
            BasicBlock::new(0, vec![64]),
            BasicBlock::new(64, vec![0, 128]), // 0 hits the patched jump: safe
        ]));
        let img = b.build();
        let err = img
            .try_insert(ProbePoint::entry(hazard), Snippet::noop("n"))
            .unwrap_err();
        assert_eq!(
            err,
            PatchError::BranchIntoPatch {
                name: "hazard".into(),
                target_offset: 8,
                patch_len: MIN_PATCHABLE_BYTES,
            }
        );
        assert_eq!(img.patch_count(), 0);
        // The exit patch does not touch the prologue: allowed.
        assert!(img
            .try_insert(ProbePoint::exit(hazard), Snippet::noop("n"))
            .is_ok());
        // A CFG whose targets avoid the patched region is fine at entry.
        assert!(img
            .try_insert(ProbePoint::entry(clean), Snippet::noop("n"))
            .is_ok());
        // validate_patch alone installs nothing.
        assert!(img
            .validate_patch(ProbePoint::entry(clean), &Snippet::noop("n"))
            .is_ok());
    }

    #[test]
    #[should_panic(expected = "probe install rejected")]
    fn insert_panics_on_unpatchable_function() {
        let mut b = ImageBuilder::new("app");
        let tiny = b.add(FunctionInfo::new("tiny").with_size(8));
        let img = b.build();
        img.insert(ProbePoint::entry(tiny), Snippet::noop("n"));
    }

    #[test]
    #[should_panic(expected = "duplicate function name")]
    fn duplicate_names_rejected() {
        let mut b = ImageBuilder::new("app");
        b.add_named("f");
        b.add_named("f");
        b.build();
    }

    #[test]
    fn patch_count_tracks_mutations() {
        let img = two_fn_image();
        let f = img.func("test").unwrap();
        assert_eq!(img.patch_count(), 0);
        let id = img.insert(ProbePoint::entry(f), Snippet::noop("a")); // jump + mini
        assert_eq!(img.patch_count(), 2);
        img.insert(ProbePoint::entry(f), Snippet::noop("b")); // mini only
        assert_eq!(img.patch_count(), 3);
        img.remove(ProbePoint::entry(f), id);
        assert_eq!(img.patch_count(), 4);
    }
}
