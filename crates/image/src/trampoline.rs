//! Trampoline bookkeeping.
//!
//! When instrumentation is inserted at a probe point (paper Fig 1):
//!
//! * a jump overwrites the instruction at the probe point;
//! * a **base trampoline** holds the relocated instruction, register
//!   save/restore sequences, slots for mini-trampoline jumps, and the
//!   jump back into the application;
//! * each snippet lives in its own **mini-trampoline**; multiple requests
//!   at one point are *chained*, the last one jumping back to the base.
//!
//! This module models that structure faithfully enough that (a) inserted
//! snippets really execute, in chain order; (b) dispatch cost is charged
//! once per traversal of an occupied probe point; (c) removing a snippet
//! splices the chain; and (d) allocated trampoline bytes are tracked, as
//! `dynprof` reports in its timefile.

use std::sync::Arc;

use dynprof_sim::SimTime;

use crate::snippet::{Snippet, SnippetId};

/// Bytes occupied by one base trampoline (relocated instruction + register
/// save/restore + slot jumps), matching Dyninst's order of magnitude.
pub const BASE_TRAMPOLINE_BYTES: usize = 128;
/// Bytes occupied by one mini-trampoline (snippet stub + chain jump).
pub const MINI_TRAMPOLINE_BYTES: usize = 64;
/// Smallest function body that can hold the probe-point jump: the
/// displaced long-jump sequence plus the relocated instruction must fit
/// inside the function, or the patch would overwrite the next symbol.
pub const MIN_PATCHABLE_BYTES: usize = 16;

/// A mini-trampoline: one snippet plus its position in the chain.
#[derive(Clone, Debug)]
pub struct MiniTrampoline {
    /// Removal handle.
    pub id: SnippetId,
    /// The instrumentation primitive, shared so the fire path clones a
    /// single refcount per chained snippet (a `Snippet` holds several
    /// `Arc`s — name, code, and optionally its IR program).
    pub snippet: Arc<Snippet>,
}

/// A base trampoline with its chain of mini-trampolines.
///
/// The base exists only while at least one mini-trampoline is installed;
/// when the chain empties, the jump at the probe point is removed and the
/// probe costs nothing again.
#[derive(Clone, Debug, Default)]
pub struct BaseTrampoline {
    chain: Vec<MiniTrampoline>,
}

impl BaseTrampoline {
    /// An empty (uninstalled) base trampoline.
    pub fn new() -> BaseTrampoline {
        BaseTrampoline { chain: Vec::new() }
    }

    /// Is any instrumentation installed at this point?
    pub fn occupied(&self) -> bool {
        !self.chain.is_empty()
    }

    /// Number of chained mini-trampolines.
    pub fn chain_len(&self) -> usize {
        self.chain.len()
    }

    /// Append a mini-trampoline to the end of the chain (Dyninst appends;
    /// the last trampoline jumps back to the base).
    pub fn push(&mut self, id: SnippetId, snippet: Snippet) {
        self.chain.push(MiniTrampoline {
            id,
            snippet: Arc::new(snippet),
        });
    }

    /// Remove the mini-trampoline with the given id, splicing the chain.
    /// Returns `true` if found.
    pub fn remove(&mut self, id: SnippetId) -> bool {
        let before = self.chain.len();
        self.chain.retain(|m| m.id != id);
        self.chain.len() != before
    }

    /// Remove every mini-trampoline whose snippet name matches.
    pub fn remove_named(&mut self, name: &str) -> usize {
        let before = self.chain.len();
        self.chain.retain(|m| &*m.snippet.name != name);
        before - self.chain.len()
    }

    /// Iterate the chain in execution order.
    pub fn iter(&self) -> impl Iterator<Item = &MiniTrampoline> {
        self.chain.iter()
    }

    /// Total simulated snippet cost of one traversal (sum over the chain),
    /// excluding the base-trampoline dispatch cost which the image charges.
    pub fn chain_cost(&self) -> SimTime {
        self.chain.iter().map(|m| m.snippet.cost).sum()
    }

    /// Bytes of dynamically allocated code this point accounts for.
    pub fn allocated_bytes(&self) -> usize {
        if self.chain.is_empty() {
            0
        } else {
            BASE_TRAMPOLINE_BYTES + MINI_TRAMPOLINE_BYTES * self.chain.len()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snip(name: &str, ns: u64) -> Snippet {
        Snippet::new(name, SimTime::from_nanos(ns), |_| {})
    }

    #[test]
    fn empty_base_costs_nothing() {
        let b = BaseTrampoline::new();
        assert!(!b.occupied());
        assert_eq!(b.allocated_bytes(), 0);
        assert_eq!(b.chain_cost(), SimTime::ZERO);
    }

    #[test]
    fn chaining_accumulates_cost_in_order() {
        let mut b = BaseTrampoline::new();
        b.push(SnippetId(1), snip("a", 100));
        b.push(SnippetId(2), snip("b", 50));
        assert!(b.occupied());
        assert_eq!(b.chain_len(), 2);
        assert_eq!(b.chain_cost(), SimTime::from_nanos(150));
        let names: Vec<_> = b.iter().map(|m| m.snippet.name.to_string()).collect();
        assert_eq!(names, ["a", "b"]);
        assert_eq!(
            b.allocated_bytes(),
            BASE_TRAMPOLINE_BYTES + 2 * MINI_TRAMPOLINE_BYTES
        );
    }

    #[test]
    fn remove_splices_chain() {
        let mut b = BaseTrampoline::new();
        b.push(SnippetId(1), snip("a", 100));
        b.push(SnippetId(2), snip("b", 50));
        b.push(SnippetId(3), snip("c", 25));
        assert!(b.remove(SnippetId(2)));
        assert!(!b.remove(SnippetId(2)), "double remove reports absence");
        let names: Vec<_> = b.iter().map(|m| m.snippet.name.to_string()).collect();
        assert_eq!(names, ["a", "c"]);
        assert_eq!(b.chain_cost(), SimTime::from_nanos(125));
    }

    #[test]
    fn base_deallocates_when_chain_empties() {
        let mut b = BaseTrampoline::new();
        b.push(SnippetId(1), snip("a", 100));
        assert!(b.remove(SnippetId(1)));
        assert!(!b.occupied());
        assert_eq!(b.allocated_bytes(), 0);
    }

    #[test]
    fn remove_named_removes_all_matching() {
        let mut b = BaseTrampoline::new();
        b.push(SnippetId(1), snip("vt", 10));
        b.push(SnippetId(2), snip("other", 10));
        b.push(SnippetId(3), snip("vt", 10));
        assert_eq!(b.remove_named("vt"), 2);
        assert_eq!(b.chain_len(), 1);
    }
}
