//! # parking_lot (vendored shim) — poison-free locks over `std::sync`
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the tiny slice of the `parking_lot` API it actually
//! uses as a shim over the standard library: [`Mutex`], [`RwLock`] and
//! [`Condvar`] whose lock methods return guards directly (no
//! `Result`/poisoning — a panicked holder's poison is swallowed, exactly
//! the ergonomics `parking_lot` provides and the simulator's
//! one-thread-at-a-time scheduler relies on).
//!
//! The shim is API-compatible for every call site in this repository; if
//! a future change needs more of the real crate's surface, extend this
//! file rather than reintroducing the network dependency.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync;

/// A mutual-exclusion lock whose [`Mutex::lock`] returns the guard
/// directly, ignoring poisoning.
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// A new mutex holding `value`.
    pub const fn new(value: T) -> Mutex<T> {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, blocking the current thread until it is free.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(
                self.inner
                    .lock()
                    .unwrap_or_else(sync::PoisonError::into_inner),
            ),
        }
    }

    /// Try to acquire the lock without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for Mutex<T> {
    fn default() -> Mutex<T> {
        Mutex::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily take the
/// underlying std guard by value; outside `wait` it is always `Some`.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable compatible with [`Mutex`] / [`MutexGuard`].
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// A new condition variable.
    pub const fn new() -> Condvar {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Atomically release the guard's lock and block until notified; the
    /// lock is re-acquired before returning.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
    }

    /// Atomically release the guard's lock and block until notified or
    /// `timeout` elapses; the lock is re-acquired before returning.
    /// Returns `true` if the wait timed out.
    pub fn wait_for<T>(&self, guard: &mut MutexGuard<'_, T>, timeout: std::time::Duration) -> bool {
        let std_guard = guard.inner.take().expect("guard present");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(sync::PoisonError::into_inner);
        guard.inner = Some(std_guard);
        result.timed_out()
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake every waiting thread.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl Default for Condvar {
    fn default() -> Condvar {
        Condvar::new()
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock whose `read`/`write` return guards directly,
/// ignoring poisoning.
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// A new lock holding `value`.
    pub const fn new(value: T) -> RwLock<T> {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(sync::PoisonError::into_inner),
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: Default> Default for RwLock<T> {
    fn default() -> RwLock<T> {
        RwLock::new(T::default())
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLockWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_locks_and_mutates() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (m, cv) = &*p2;
            let mut g = m.lock();
            while !*g {
                cv.wait(&mut g);
            }
        });
        {
            let (m, cv) = &*pair;
            *m.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn rwlock_shared_then_exclusive() {
        let l = RwLock::new(vec![1, 2]);
        {
            let a = l.read();
            let b = l.read();
            assert_eq!(a.len() + b.len(), 4);
        }
        l.write().push(3);
        assert_eq!(*l.read(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_mutex_is_recovered() {
        let m = Arc::new(Mutex::new(7));
        let m2 = Arc::clone(&m);
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison it");
        })
        .join();
        assert_eq!(*m.lock(), 7);
    }
}
