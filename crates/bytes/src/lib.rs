//! # bytes (vendored shim) — cheaply cloneable byte buffers
//!
//! The build environment has no network access to crates.io, so this
//! workspace vendors the slice of the `bytes` crate API its trace codec
//! uses: [`BytesMut`] for little-endian encoding, [`Bytes`] for zero-copy
//! reads (an `Arc<[u8]>` window advanced by the [`Buf`] getters), and the
//! [`Buf`]/[`BufMut`] traits those methods live on.
//!
//! Semantics match the real crate for every call site in this repository:
//! `freeze` is O(1), `clone`/`slice`/`split_to` share the same allocation,
//! and the getters panic on underflow just as `bytes` does.

#![warn(missing_docs)]

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// Read access to a byte cursor: each getter consumes from the front.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Consume `n` bytes from the front, returning them as a slice.
    fn take_front(&mut self, n: usize) -> &[u8];

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        self.take_front(1)[0]
    }

    /// Read a little-endian `u16`.
    fn get_u16_le(&mut self) -> u16 {
        u16::from_le_bytes(self.take_front(2).try_into().expect("2 bytes"))
    }

    /// Read a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take_front(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `i32`.
    fn get_i32_le(&mut self) -> i32 {
        i32::from_le_bytes(self.take_front(4).try_into().expect("4 bytes"))
    }

    /// Read a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take_front(8).try_into().expect("8 bytes"))
    }
}

/// Append access to a growable byte buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a little-endian `u16`.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `i32`.
    fn put_i32_le(&mut self, v: i32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Append a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

/// A growable byte buffer used while encoding; [`BytesMut::freeze`] turns
/// it into an immutable, cheaply-cloneable [`Bytes`].
#[derive(Default, Clone, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes reserved.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Convert into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.buf
    }
}

impl fmt::Debug for BytesMut {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BytesMut({} bytes)", self.buf.len())
    }
}

/// An immutable window into reference-counted byte storage. Cloning,
/// slicing and splitting share the allocation; the [`Buf`] getters advance
/// the window's start.
#[derive(Clone)]
pub struct Bytes {
    data: Arc<[u8]>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::from_static(&[])
    }

    /// A buffer viewing a static slice (copied once into shared storage;
    /// the real crate avoids even that, which no caller here observes).
    pub fn from_static(s: &'static [u8]) -> Bytes {
        Bytes::from(s.to_vec())
    }

    /// Bytes visible through this window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }

    /// A sub-window of this buffer (indices relative to the window),
    /// sharing the same storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let lo = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => self.len(),
        };
        assert!(lo <= hi && hi <= self.len(), "slice out of range");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + lo,
            end: self.start + hi,
        }
    }

    /// Split off and return the first `n` bytes, advancing this window
    /// past them.
    pub fn split_to(&mut self, n: usize) -> Bytes {
        assert!(n <= self.len(), "split_to out of range");
        let head = self.slice(0..n);
        self.start += n;
        head
    }

    /// Copy the window into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn take_front(&mut self, n: usize) -> &[u8] {
        assert!(n <= self.len(), "buffer underflow");
        let s = self.start;
        self.start += n;
        &self.data[s..s + n]
    }
}

impl Default for Bytes {
    fn default() -> Bytes {
        Bytes::new()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: v.into(),
            start: 0,
            end,
        }
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_little_endian() {
        let mut b = BytesMut::new();
        b.put_u8(7);
        b.put_u16_le(0xBEEF);
        b.put_u32_le(0xDEAD_BEEF);
        b.put_i32_le(-42);
        b.put_u64_le(u64::MAX - 1);
        b.put_slice(b"xyz");
        let mut r = b.freeze();
        assert_eq!(r.remaining(), 1 + 2 + 4 + 4 + 8 + 3);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16_le(), 0xBEEF);
        assert_eq!(r.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(r.get_i32_le(), -42);
        assert_eq!(r.get_u64_le(), u64::MAX - 1);
        assert_eq!(r.split_to(3).as_ref(), b"xyz");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn slices_share_storage_and_windows_nest() {
        let b = Bytes::from(vec![0, 1, 2, 3, 4, 5]);
        let mid = b.slice(1..5);
        assert_eq!(mid.as_ref(), &[1, 2, 3, 4]);
        let inner = mid.slice(1..=2);
        assert_eq!(inner.as_ref(), &[2, 3]);
        assert_eq!(b.slice(..).len(), 6);
    }

    #[test]
    fn split_to_advances() {
        let mut b = Bytes::from(vec![9, 8, 7, 6]);
        let head = b.split_to(2);
        assert_eq!(head.as_ref(), &[9, 8]);
        assert_eq!(b.as_ref(), &[7, 6]);
        assert_eq!(b.to_vec(), vec![7, 6]);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        Bytes::from(vec![1]).get_u32_le();
    }
}
