//! A small, deterministic JSON document model.
//!
//! The figure harnesses need byte-identical output between the serial and
//! parallel runners, so the writer is fully deterministic: objects are
//! ordered `Vec`s (insertion order, no hashing), floats print in Rust's
//! shortest round-trip form with a trailing `.0` for integral values
//! (matching `serde_json`'s style), and pretty-printing uses two-space
//! indentation.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer.
    UInt(u64),
    /// A signed integer.
    Int(i64),
    /// A float (non-finite values print as `null`).
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object: ordered key/value pairs, written in the order given.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An object from `(key, value)` pairs, preserving their order.
    pub fn obj<const N: usize>(pairs: [(&str, Json); N]) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Compact rendering (no whitespace).
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Int(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => write_f64(out, *v),
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, '[', ']', items.len(), |out, i| {
                items[i].write(out, indent, depth + 1);
            }),
            Json::Obj(pairs) => write_seq(out, indent, depth, '{', '}', pairs.len(), |out, i| {
                let (k, v) = &pairs[i];
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                v.write(out, indent, depth + 1);
            }),
        }
    }
}

impl From<u64> for Json {
    fn from(v: u64) -> Json {
        Json::UInt(v)
    }
}

impl From<usize> for Json {
    fn from(v: usize) -> Json {
        Json::UInt(v as u64)
    }
}

impl From<i64> for Json {
    fn from(v: i64) -> Json {
        Json::Int(v)
    }
}

impl From<f64> for Json {
    fn from(v: f64) -> Json {
        Json::Float(v)
    }
}

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::Str(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::Str(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    n: usize,
    mut item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if n == 0 {
        out.push(close);
        return;
    }
    for i in 0..n {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i);
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
}

fn write_f64(out: &mut String, v: f64) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 1e16 {
        let _ = write!(out, "{v:.1}");
    } else {
        let _ = write!(out, "{v}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_shapes() {
        let doc = Json::obj([
            ("name", "fig7".into()),
            ("points", Json::Arr(vec![Json::UInt(1), Json::Float(2.5)])),
            ("empty", Json::Arr(vec![])),
        ]);
        assert_eq!(
            doc.compact(),
            r#"{"name":"fig7","points":[1,2.5],"empty":[]}"#
        );
        assert_eq!(
            doc.pretty(),
            "{\n  \"name\": \"fig7\",\n  \"points\": [\n    1,\n    2.5\n  ],\n  \"empty\": []\n}"
        );
    }

    #[test]
    fn floats_match_serde_json_style() {
        let s = |v: f64| Json::Float(v).compact();
        assert_eq!(s(1.0), "1.0");
        assert_eq!(s(-3.0), "-3.0");
        assert_eq!(s(0.25), "0.25");
        assert_eq!(s(f64::NAN), "null");
    }

    #[test]
    fn strings_escape_controls() {
        assert_eq!(
            Json::Str("a\"b\\c\n\u{1}".into()).compact(),
            r#""a\"b\\c\n\u0001""#
        );
    }

    #[test]
    fn object_order_is_insertion_order() {
        let doc = Json::obj([("z", 1u64.into()), ("a", 2u64.into())]);
        assert_eq!(doc.compact(), r#"{"z":1,"a":2}"#);
    }
}
