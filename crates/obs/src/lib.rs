//! # dynprof-obs — self-observability for the dynprof-rs runtime
//!
//! The paper's thesis is that instrumentation should cost nothing where it
//! is absent and a table lookup where it is disabled. This crate applies
//! that same discipline to dynprof-rs itself: a lock-light metrics
//! registry (monotonic [`Counter`]s, high-water [`Gauge`]s, fixed
//! log₂-bucket [`Histogram`]s) plus scoped [`Span`]s, all gated behind one
//! global enable flag.
//!
//! ## The cost hierarchy, applied to ourselves
//!
//! | State | Cost at an instrumented site |
//! |---|---|
//! | `obs` cargo feature off | zero — [`enabled`] is `const false`, the site folds away |
//! | feature on, runtime flag off (default) | one relaxed atomic load + branch |
//! | feature on, runtime flag on | the relaxed-atomic instrument update |
//!
//! Hot layers (`sim::engine`, `mpi`, `dpcl`, `vt`) guard every metric site
//! with `if obs::enabled()` and **never** charge virtual time for it, so
//! turning observation on or off cannot change any simulated result — the
//! determinism tests assert exactly that.
//!
//! ## Naming convention
//!
//! Metric names are dot-separated, lower-case, and owned by the layer that
//! records them (`sim.events_dispatched`, `mpi.bytes`,
//! `dpcl.install_latency_ns`, `vt.events`). Names containing `real` carry
//! **wall-clock** (nondeterministic) values; everything else is derived
//! from the virtual clock or event counts and is bit-reproducible for a
//! fixed seed. [`Snapshot::deterministic`] filters on that convention.
//!
//! ## Usage
//!
//! ```
//! use std::sync::OnceLock;
//! use dynprof_obs as obs;
//!
//! static EVENTS: OnceLock<&'static obs::Counter> = OnceLock::new();
//!
//! fn hot_path() {
//!     if obs::enabled() {
//!         EVENTS.get_or_init(|| obs::counter("demo.events")).inc();
//!     }
//! }
//!
//! obs::reset();
//! hot_path(); // flag off: no metric recorded
//! obs::set_enabled(true);
//! hot_path();
//! assert_eq!(obs::counter("demo.events").get(), 1);
//! obs::set_enabled(false);
//! ```
//!
//! The registry is process-global: a metrics dump ([`dump_json`])
//! aggregates everything recorded since the last [`reset`], across all
//! threads — including the parallel figure runner's workers.

#![warn(missing_docs)]

pub mod json;
mod registry;

pub use json::Json;
pub use registry::{
    counter, dump_json, gauge, histogram, read, reset, snapshot, span, Counter, Gauge, Histogram,
    HistogramSnapshot, Metric, MetricValue, Snapshot, Span,
};

#[cfg(feature = "obs")]
use std::sync::atomic::{AtomicBool, Ordering};

#[cfg(feature = "obs")]
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Whether metric sites should record. The hot-path check: a relaxed
/// atomic load and branch when the `obs` feature is on, `const false`
/// (fully folded away) when it is off.
#[cfg(feature = "obs")]
#[inline(always)]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Whether metric sites should record. The `obs` cargo feature is
/// disabled, so this is `const false` and instrumented sites compile away.
#[cfg(not(feature = "obs"))]
#[inline(always)]
pub const fn enabled() -> bool {
    false
}

/// Turn runtime observation on or off. A no-op (observation stays off)
/// when the `obs` cargo feature is disabled.
pub fn set_enabled(on: bool) {
    #[cfg(feature = "obs")]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(not(feature = "obs"))]
    let _ = on;
}
