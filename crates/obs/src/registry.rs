//! The process-global metric registry and its instruments.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

use crate::json::Json;

const RELAXED: Ordering = Ordering::Relaxed;

/// A monotonically increasing event count.
#[derive(Default)]
pub struct Counter {
    v: AtomicU64,
}

impl Counter {
    /// Add `n` to the count.
    #[inline]
    pub fn add(&self, n: u64) {
        self.v.fetch_add(n, RELAXED);
    }

    /// Add one to the count.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count.
    pub fn get(&self) -> u64 {
        self.v.load(RELAXED)
    }

    fn reset(&self) {
        self.v.store(0, RELAXED);
    }
}

/// A last-value instrument that also tracks its high-water mark.
#[derive(Default)]
pub struct Gauge {
    v: AtomicU64,
    high: AtomicU64,
}

impl Gauge {
    /// Record the current value (and raise the high-water mark if passed).
    #[inline]
    pub fn set(&self, v: u64) {
        self.v.store(v, RELAXED);
        self.high.fetch_max(v, RELAXED);
    }

    /// The last recorded value.
    pub fn get(&self) -> u64 {
        self.v.load(RELAXED)
    }

    /// The largest value ever recorded.
    pub fn high_water(&self) -> u64 {
        self.high.load(RELAXED)
    }

    fn reset(&self) {
        self.v.store(0, RELAXED);
        self.high.store(0, RELAXED);
    }
}

/// Number of log₂ buckets: bucket 0 holds zeros, bucket *k* holds values
/// in `[2^(k-1), 2^k)`, up to the full `u64` range.
pub const BUCKETS: usize = 65;

/// A histogram over fixed log₂ buckets, with count/sum/min/max.
pub struct Histogram {
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }
}

impl Histogram {
    /// Record one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        self.count.fetch_add(1, RELAXED);
        self.sum.fetch_add(v, RELAXED);
        self.min.fetch_min(v, RELAXED);
        self.max.fetch_max(v, RELAXED);
        self.buckets[bucket_of(v)].fetch_add(1, RELAXED);
    }

    /// A coherent copy of the histogram's state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(RELAXED);
        HistogramSnapshot {
            count,
            sum: self.sum.load(RELAXED),
            min: if count == 0 {
                0
            } else {
                self.min.load(RELAXED)
            },
            max: self.max.load(RELAXED),
            buckets: std::array::from_fn(|i| self.buckets[i].load(RELAXED)),
        }
    }

    fn reset(&self) {
        self.count.store(0, RELAXED);
        self.sum.store(0, RELAXED);
        self.min.store(u64::MAX, RELAXED);
        self.max.store(0, RELAXED);
        for b in &self.buckets {
            b.store(0, RELAXED);
        }
    }
}

/// The log₂ bucket index for `v`.
#[inline]
fn bucket_of(v: u64) -> usize {
    (u64::BITS - v.leading_zeros()) as usize
}

/// A point-in-time copy of one [`Histogram`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Per-bucket observation counts (65 log₂ buckets).
    pub buckets: [u64; BUCKETS],
}

impl HistogramSnapshot {
    /// Mean observation, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    fn to_json(&self) -> Json {
        let buckets: Vec<Json> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|&(_, &n)| n > 0)
            .map(|(i, &n)| {
                let lower = if i == 0 { 0 } else { 1u64 << (i - 1) };
                Json::Arr(vec![Json::UInt(lower), Json::UInt(n)])
            })
            .collect();
        Json::obj([
            ("count", Json::UInt(self.count)),
            ("sum", Json::UInt(self.sum)),
            ("min", Json::UInt(self.min)),
            ("max", Json::UInt(self.max)),
            ("buckets", Json::Arr(buckets)),
        ])
    }
}

enum Slot {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

fn registry() -> &'static Mutex<BTreeMap<&'static str, Slot>> {
    static REGISTRY: OnceLock<Mutex<BTreeMap<&'static str, Slot>>> = OnceLock::new();
    REGISTRY.get_or_init(|| Mutex::new(BTreeMap::new()))
}

fn with_registry<R>(f: impl FnOnce(&mut BTreeMap<&'static str, Slot>) -> R) -> R {
    f(&mut registry().lock().unwrap_or_else(|e| e.into_inner()))
}

/// The counter registered under `name`, created on first use. The handle
/// is `'static`: hot paths should cache it in a `OnceLock` rather than
/// re-resolving the name.
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn counter(name: &'static str) -> &'static Counter {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Slot::Counter(Box::leak(Box::default())))
        {
            Slot::Counter(c) => *c,
            _ => panic!("metric {name:?} is not a counter"),
        }
    })
}

/// The gauge registered under `name`, created on first use.
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn gauge(name: &'static str) -> &'static Gauge {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Slot::Gauge(Box::leak(Box::default())))
        {
            Slot::Gauge(g) => *g,
            _ => panic!("metric {name:?} is not a gauge"),
        }
    })
}

/// The histogram registered under `name`, created on first use.
///
/// Panics if `name` is already registered as a different instrument kind.
pub fn histogram(name: &'static str) -> &'static Histogram {
    with_registry(|r| {
        match r
            .entry(name)
            .or_insert_with(|| Slot::Histogram(Box::leak(Box::default())))
        {
            Slot::Histogram(h) => *h,
            _ => panic!("metric {name:?} is not a histogram"),
        }
    })
}

/// Read one metric by name without creating it: the per-probe cost
/// readback API. Controllers and tests use this to inspect instruments
/// registered by hot paths (fire counts, latency histograms) without
/// materializing a full [`Snapshot`]. Returns `None` for unknown names.
pub fn read(name: &str) -> Option<MetricValue> {
    with_registry(|r| {
        r.get(name).map(|slot| match slot {
            Slot::Counter(c) => MetricValue::Counter(c.get()),
            Slot::Gauge(g) => MetricValue::Gauge(g.get(), g.high_water()),
            Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
        })
    })
}

/// Zero every registered instrument (instruments stay registered — handles
/// cached by hot paths remain valid).
pub fn reset() {
    with_registry(|r| {
        for slot in r.values() {
            match slot {
                Slot::Counter(c) => c.reset(),
                Slot::Gauge(g) => g.reset(),
                Slot::Histogram(h) => h.reset(),
            }
        }
    });
}

/// The value of one metric in a [`Snapshot`].
///
/// The size skew between variants is deliberate: snapshots are taken
/// once per run, never on the hot path, so boxing the histogram state
/// would only complicate callers.
#[derive(Clone, Debug, PartialEq)]
#[allow(clippy::large_enum_variant)]
pub enum MetricValue {
    /// A [`Counter`]'s count.
    Counter(u64),
    /// A [`Gauge`]'s `(last, high_water)` pair.
    Gauge(u64, u64),
    /// A [`Histogram`]'s state.
    Histogram(HistogramSnapshot),
}

/// One named metric in a [`Snapshot`].
#[derive(Clone, Debug, PartialEq)]
pub struct Metric {
    /// The registered name.
    pub name: String,
    /// The captured value.
    pub value: MetricValue,
}

/// A point-in-time copy of the whole registry, sorted by name.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Snapshot {
    /// All captured metrics, in name order.
    pub metrics: Vec<Metric>,
}

impl Snapshot {
    /// The metrics whose values are bit-reproducible for a fixed seed:
    /// everything except wall-clock instruments, whose names contain
    /// `real` by convention (see the crate docs).
    pub fn deterministic(&self) -> Snapshot {
        Snapshot {
            metrics: self
                .metrics
                .iter()
                .filter(|m| !m.name.contains("real"))
                .cloned()
                .collect(),
        }
    }

    /// The snapshot as a JSON document:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {...}}`.
    pub fn to_json(&self) -> Json {
        let mut counters = Vec::new();
        let mut gauges = Vec::new();
        let mut hists = Vec::new();
        for m in &self.metrics {
            match &m.value {
                MetricValue::Counter(v) => counters.push((m.name.clone(), Json::UInt(*v))),
                MetricValue::Gauge(v, hw) => gauges.push((
                    m.name.clone(),
                    Json::obj([("value", Json::UInt(*v)), ("high_water", Json::UInt(*hw))]),
                )),
                MetricValue::Histogram(h) => hists.push((m.name.clone(), h.to_json())),
            }
        }
        Json::obj([
            ("counters", Json::Obj(counters)),
            ("gauges", Json::Obj(gauges)),
            ("histograms", Json::Obj(hists)),
        ])
    }
}

/// Capture every registered instrument.
pub fn snapshot() -> Snapshot {
    let metrics = with_registry(|r| {
        r.iter()
            .map(|(name, slot)| Metric {
                name: (*name).to_string(),
                value: match slot {
                    Slot::Counter(c) => MetricValue::Counter(c.get()),
                    Slot::Gauge(g) => MetricValue::Gauge(g.get(), g.high_water()),
                    Slot::Histogram(h) => MetricValue::Histogram(h.snapshot()),
                },
            })
            .collect()
    });
    Snapshot { metrics }
}

/// The whole registry as pretty-printed JSON (a [`snapshot`] rendered with
/// [`Json::pretty`]).
pub fn dump_json() -> String {
    snapshot().to_json().pretty()
}

/// A scoped wall-clock timer: on drop, the elapsed nanoseconds are
/// recorded into the histogram `name`. Inert (no clock read at all) when
/// observation is disabled at creation.
///
/// Spans measure *host* time — by the naming convention, span names must
/// contain `real` (e.g. `bench.sweep.real_ns`).
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span {
    start: Option<(&'static str, Instant)>,
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some((name, t0)) = self.start.take() {
            histogram(name).record(t0.elapsed().as_nanos() as u64);
        }
    }
}

/// Start a [`Span`] feeding the histogram `name` (which must contain
/// `real`: spans read the host clock).
pub fn span(name: &'static str) -> Span {
    Span {
        start: if crate::enabled() {
            debug_assert!(name.contains("real"), "span names must contain \"real\"");
            Some((name, Instant::now()))
        } else {
            None
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);
    }

    #[test]
    fn histogram_stats() {
        let h = Histogram::default();
        for v in [0, 1, 2, 3, 1000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 1006);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 1000);
        assert_eq!(s.buckets[0], 1); // the zero
        assert_eq!(s.buckets[1], 1); // 1
        assert_eq!(s.buckets[2], 2); // 2, 3
        assert_eq!(s.buckets[10], 1); // 1000 ∈ [512, 1024)
        assert!((s.mean() - 201.2).abs() < 1e-9);
    }

    #[test]
    fn registry_is_typed_and_resettable() {
        let c = counter("test.registry.counter");
        c.add(3);
        assert_eq!(counter("test.registry.counter").get(), 3);
        let g = gauge("test.registry.gauge");
        g.set(9);
        g.set(4);
        assert_eq!(g.get(), 4);
        assert_eq!(g.high_water(), 9);
        reset();
        assert_eq!(c.get(), 0);
        assert_eq!(g.high_water(), 0);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        counter("test.registry.mismatch");
        gauge("test.registry.mismatch");
    }

    #[test]
    fn read_back_by_name_without_creating() {
        assert_eq!(read("test.read.missing"), None);
        counter("test.read.counter").add(7);
        assert!(matches!(
            read("test.read.counter"),
            Some(MetricValue::Counter(n)) if n >= 7
        ));
        assert_eq!(read("test.read.missing"), None, "read never registers");
    }

    #[test]
    fn snapshot_is_sorted_and_filterable() {
        counter("test.snap.b_real_ns").add(1);
        counter("test.snap.a").add(1);
        let s = snapshot();
        let names: Vec<&str> = s.metrics.iter().map(|m| m.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort();
        assert_eq!(names, sorted);
        let det = s.deterministic();
        assert!(det.metrics.iter().any(|m| m.name == "test.snap.a"));
        assert!(!det.metrics.iter().any(|m| m.name.contains("real")));
    }
}
