//! # dynprof — dynamic instrumentation of large-scale MPI and OpenMP applications
//!
//! A complete, simulator-backed reproduction of Thiffault, Voss, Healey &
//! Kim, *Dynamic Instrumentation of Large-Scale MPI and OpenMP
//! Applications* (IPDPS 2003): the `dynprof` tool, the DPCL daemon
//! infrastructure, Dyninst-style image patching, a Vampirtrace-analogue
//! trace library with dynamic control of instrumentation
//! (`VT_confsync`), simulated MPI and OpenMP runtimes, the four ASCI
//! kernel benchmarks, and harnesses regenerating every figure and table
//! in the paper's evaluation.
//!
//! This facade re-exports the workspace crates:
//!
//! * [`sim`] — deterministic discrete-event cluster simulator.
//! * [`mpi`] — simulated MPI with a PMPI-style wrapper interface.
//! * [`omp`] — simulated OpenMP with Guidetrace-style region hooks.
//! * [`image`] — program images, probe points, trampolines.
//! * [`dpcl`] — asynchronous instrumentation daemons.
//! * [`vt`] — the trace library, configuration files, `VT_confsync`.
//! * [`core`] — the dynprof tool: commands, sessions, the Fig-6 protocol.
//! * [`apps`] — the ASCI kernels (Smg98, Sppm, Sweep3d, Umt98).
//! * [`analysis`] — postmortem profiles and ASCII time-lines.
//! * [`obs`] — self-observability: zero-cost-when-off metrics and spans.
//!
//! The crates layer strictly (arrows read "is depended on by"):
//!
//! ```text
//! obs  <- sim, mpi, dpcl, vt, bench      (leaf; everything may observe)
//! sim  <- mpi, omp, image
//! mpi  <- vt, core, apps, bench
//! omp  <- vt, core, apps, bench
//! image<- dpcl, vt, core, apps
//! dpcl <- core
//! vt   <- core, apps, analysis, bench
//! core <- apps (bench only), bench, examples
//! ```
//!
//! ## Quickstart
//!
//! ```
//! use dynprof::apps::{smg98, Smg98Params};
//! use dynprof::core::{run_session, SessionConfig};
//! use dynprof::sim::Machine;
//! use dynprof::vt::Policy;
//!
//! // Dynamically instrument the multigrid solver subset of a 4-rank
//! // Smg98 run, exactly as the paper's `Dynamic` policy does.
//! let app = smg98(4, Smg98Params::test());
//! let report = run_session(&app, SessionConfig::new(Machine::test_machine(), Policy::Dynamic));
//! assert_eq!(report.probe_pairs_installed, 62 * 4);
//! println!("application time: {}", report.app_time);
//! ```
//!
//! ## Observing the tool itself
//!
//! The instrumentation layers carry their own instrumentation: enable the
//! [`obs`] registry and every session reports scheduler, MPI, daemon, and
//! trace-library metrics. Observation never advances virtual time, so the
//! simulated results are bit-identical with it on or off.
//!
//! ```
//! use dynprof::apps::{smg98, Smg98Params};
//! use dynprof::core::{run_session, SessionConfig};
//! use dynprof::sim::Machine;
//! use dynprof::vt::Policy;
//!
//! dynprof::obs::set_enabled(true);
//! let app = smg98(4, Smg98Params::test());
//! run_session(&app, SessionConfig::new(Machine::test_machine(), Policy::Dynamic));
//! dynprof::obs::set_enabled(false);
//! let snap = dynprof::obs::snapshot();
//! assert!(snap.metrics.iter().any(|m| m.name == "sim.events_dispatched"));
//! println!("{}", snap.to_json().pretty());
//! ```

#![warn(missing_docs)]

pub use dynprof_analysis as analysis;
pub use dynprof_apps as apps;
pub use dynprof_core as core;
pub use dynprof_dpcl as dpcl;
pub use dynprof_image as image;
pub use dynprof_mpi as mpi;
pub use dynprof_obs as obs;
pub use dynprof_omp as omp;
pub use dynprof_sim as sim;
pub use dynprof_vt as vt;
